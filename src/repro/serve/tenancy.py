"""Multi-tenant admission primitives: SLO classes, quotas, fair queuing.

A fleet (:mod:`repro.serve.fleet`) serves several tenants with
different service objectives from the same pool of resident models.
Three primitives keep them honest with each other:

* :class:`SLOClass` — the per-tenant contract: a deadline, a
  weighted-fair share, an optional token-bucket quota, and either a
  pinned model or a *route group* the variant router
  (:mod:`repro.serve.router`) picks from at dispatch time.
* :class:`TokenBucket` — the quota: ``quota_rps`` sustained requests
  per second with ``quota_burst`` of headroom.  Over-quota submits are
  rejected synchronously with
  :class:`~repro.serve.QuotaExceeded` — the tenant's budget ran out,
  not the fleet's capacity, so other tenants never notice.
* :class:`WeightedFairQueue` — start-time fair queuing over per-tenant
  bounded FIFOs.  Each enqueued request is stamped with a virtual
  finish tag ``start + 1/weight``; the dispatcher always pops the
  globally smallest tag, so backlogged tenants drain in proportion to
  their weights while an idle tenant's first request goes (nearly)
  straight through.  Per-tenant depth bounds keep one tenant's
  backlog from occupying another's memory.

These sit *in front of* the per-model servers: the existing bounded
queue and dynamic batcher are unchanged, the fleet's scheduler thread
simply feeds them in weighted-fair order.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Tuple

__all__ = ["SLOClass", "TokenBucket", "WeightedFairQueue"]


@dataclass(frozen=True)
class SLOClass:
    """One tenant's service contract.

    ``deadline_ms`` is the default deadline stamped on every request
    the tenant submits (overridable per request).  ``weight`` is the
    tenant's weighted-fair share of dispatch capacity when backlogged.
    ``quota_rps``/``quota_burst`` parameterize the token bucket
    (``None`` = unmetered; burst defaults to one second of rate).

    Exactly one of ``model`` (a pinned slug — the tenant always hits
    that model) or ``route`` (a candidate group the variant router
    picks from, per request, against this class's deadline) must be
    set.  ``share`` is the tenant's fraction of offered load in a
    traffic mix (:meth:`repro.serve.LoadGenerator.run_mix`) — a
    load-generation hint, not an admission parameter.
    """

    name: str
    deadline_ms: float
    weight: float = 1.0
    quota_rps: Optional[float] = None
    quota_burst: Optional[float] = None
    queue_depth: int = 64
    model: Optional[str] = None
    route: Tuple[str, ...] = ()
    share: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must be non-empty")
        if self.deadline_ms <= 0:
            raise ValueError(f"tenant {self.name!r}: deadline_ms must be "
                             f"positive, got {self.deadline_ms}")
        if self.weight <= 0:
            raise ValueError(f"tenant {self.name!r}: weight must be positive")
        if self.queue_depth < 1:
            raise ValueError(f"tenant {self.name!r}: queue_depth must be "
                             f">= 1")
        if self.share <= 0:
            raise ValueError(f"tenant {self.name!r}: share must be positive")
        if self.quota_rps is not None and self.quota_rps <= 0:
            raise ValueError(f"tenant {self.name!r}: quota_rps must be "
                             f"positive")
        if self.quota_burst is not None and self.quota_rps is None:
            raise ValueError(f"tenant {self.name!r}: quota_burst needs "
                             f"quota_rps")
        if self.quota_burst is not None and self.quota_burst < 1:
            raise ValueError(f"tenant {self.name!r}: quota_burst must be "
                             f">= 1")
        # Normalize route to a tuple so frozen instances hash/compare.
        object.__setattr__(self, "route", tuple(self.route))
        if bool(self.model) == bool(self.route):
            raise ValueError(
                f"tenant {self.name!r}: set exactly one of model= (pinned) "
                f"or route= (router candidate group)")

    @property
    def routed(self) -> bool:
        return bool(self.route)

    def bucket(self, clock: Callable[[], float] = time.monotonic
               ) -> Optional["TokenBucket"]:
        """The tenant's quota bucket, or ``None`` when unmetered."""
        if self.quota_rps is None:
            return None
        burst = (self.quota_burst if self.quota_burst is not None
                 else max(1.0, self.quota_rps))
        return TokenBucket(self.quota_rps, burst, clock=clock)

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "deadline_ms": self.deadline_ms,
            "weight": self.weight,
            "quota_rps": self.quota_rps,
            "quota_burst": self.quota_burst,
            "queue_depth": self.queue_depth,
            "model": self.model,
            "route": list(self.route),
            "share": self.share,
        }


class TokenBucket:
    """Thread-safe token bucket: ``rate`` tokens/s, capacity ``burst``.

    Starts full.  ``try_acquire`` refills lazily from the injected
    monotonic clock and never blocks — admission control wants a
    synchronous yes/no, not a wait.
    """

    def __init__(self, rate: float, burst: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = float(rate)
        self.burst = float(burst) if burst is not None else max(1.0, rate)
        if self.burst < 1:
            raise ValueError("burst must be >= 1 (one whole request)")
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def available(self) -> float:
        """Current token count (after a lazy refill)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


@dataclass
class _TenantLane:
    weight: float
    depth: int
    items: Deque[Tuple[float, object]] = field(default_factory=deque)
    last_finish: float = 0.0


class WeightedFairQueue:
    """Start-time fair queuing (SFQ) over per-tenant bounded FIFOs.

    ``put`` stamps each item with a virtual finish tag
    ``max(vtime, tenant.last_finish) + 1/weight``; ``get`` pops the
    item with the globally smallest tag and advances virtual time to
    it.  When every tenant is backlogged the dequeue rate per tenant
    is proportional to its weight; a tenant waking from idle starts at
    the current virtual time instead of catching up on credit it never
    used.  O(#tenants) per ``get`` — fleets have a handful of SLO
    classes, not thousands.

    ``put`` returns ``False`` when that tenant's lane is full (the
    caller maps this to :class:`~repro.serve.QueueFull`); ``get``
    returns ``None`` on timeout or when the queue is closed and
    drained.
    """

    def __init__(self, tenants: Mapping[str, "SLOClass"]) -> None:
        if not tenants:
            raise ValueError("need at least one tenant")
        self._cond = threading.Condition()
        self._lanes: Dict[str, _TenantLane] = {
            name: _TenantLane(weight=slo.weight, depth=slo.queue_depth)
            for name, slo in tenants.items()
        }
        self._vtime = 0.0
        self._closed = False

    def put(self, tenant: str, item: object) -> bool:
        """Enqueue for ``tenant``; False when its lane is at depth."""
        with self._cond:
            lane = self._lanes[tenant]
            if self._closed:
                raise RuntimeError("queue is closed")
            if len(lane.items) >= lane.depth:
                return False
            start = max(self._vtime, lane.last_finish)
            finish = start + 1.0 / lane.weight
            lane.last_finish = finish
            lane.items.append((finish, item))
            self._cond.notify()
            return True

    def get(self, timeout: Optional[float] = None
            ) -> Optional[Tuple[str, object]]:
        """Pop the weighted-fair next ``(tenant, item)``.

        Blocks up to ``timeout`` (forever when ``None``); returns
        ``None`` on timeout, or immediately when closed and empty.
        """
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        with self._cond:
            while True:
                best_name = None
                best_tag = 0.0
                for name, lane in self._lanes.items():
                    if lane.items and (best_name is None
                                       or lane.items[0][0] < best_tag):
                        best_name = name
                        best_tag = lane.items[0][0]
                if best_name is not None:
                    lane = self._lanes[best_name]
                    tag, item = lane.items.popleft()
                    self._vtime = max(self._vtime, tag)
                    return best_name, item
                if self._closed:
                    return None
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return None

    def close(self) -> None:
        """Stop admissions and wake blocked getters (items stay queued)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> List[Tuple[str, object]]:
        """Remove and return everything still queued (for cancellation)."""
        with self._cond:
            out: List[Tuple[str, object]] = []
            for name, lane in self._lanes.items():
                out.extend((name, item) for _, item in lane.items)
                lane.items.clear()
            return out

    def qsize(self, tenant: Optional[str] = None) -> int:
        with self._cond:
            if tenant is not None:
                return len(self._lanes[tenant].items)
            return sum(len(lane.items) for lane in self._lanes.values())

    @property
    def closed(self) -> bool:
        return self._closed
