"""Request-side primitives of the serving runtime.

A submitted inference request is represented by a :class:`PendingResponse`
— a minimal single-assignment future.  The server thread that executes
the request completes it exactly once, either with the output tensor or
with an exception (:class:`DeadlineExceeded`, :class:`ServerClosed`,
or whatever the execution raised); the submitting thread blocks in
:meth:`PendingResponse.result`.

The contract the serving layer guarantees — and the shutdown tests
enforce — is that **every accepted request is completed**: a request
may fail loudly, but it is never silently dropped.
"""

from __future__ import annotations

import threading
import time
from typing import Optional

import numpy as np

__all__ = [
    "DeadlineExceeded",
    "PendingResponse",
    "QueueFull",
    "QuotaExceeded",
    "ServeError",
    "ServerClosed",
    "WorkerCrashed",
]


class ServeError(RuntimeError):
    """Base class of every serving-layer error."""


class QueueFull(ServeError):
    """Admission control rejected the request: the bounded queue is at
    capacity.  Raised synchronously by ``submit`` — the request was
    never accepted, so backing off and retrying is safe."""


class QuotaExceeded(ServeError):
    """The tenant's token-bucket quota rejected the request (multi-
    tenant fleet admission).  Like :class:`QueueFull` it is raised
    synchronously at submit time — the request was never accepted —
    but it is the *tenant's* budget that ran out, not the server's
    queue, so other tenants are unaffected and retrying only helps
    after the bucket refills."""


class DeadlineExceeded(ServeError):
    """The request's deadline expired while it waited in the queue."""


class ServerClosed(ServeError):
    """The server is not accepting work (not started, shutting down,
    or the request was cancelled by a non-draining shutdown)."""


class WorkerCrashed(ServeError):
    """The worker process holding this request died before responding
    (process mode).  The request fails loudly — never silently — and
    surviving workers keep serving."""


class PendingResponse:
    """Single-assignment future for one submitted request.

    Created by :meth:`repro.serve.Server.submit`; completed exactly
    once by a worker (or by shutdown/expiry bookkeeping).  ``result``
    blocks until then and either returns the output array or raises
    the recorded error.
    """

    __slots__ = ("_event", "_value", "_error", "_cb_lock", "_callbacks",
                 "submitted_at", "completed_at")

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Optional[np.ndarray] = None
        self._error: Optional[BaseException] = None
        self._cb_lock = threading.Lock()
        self._callbacks: Optional[list] = None
        # time.monotonic(), not perf_counter(): monotonic is documented
        # system-wide on Linux/Windows/macOS (3.10+), so the stamp stays
        # comparable when a deadline derived from it crosses into a
        # worker process; perf_counter makes no such guarantee.
        self.submitted_at = time.monotonic()
        self.completed_at: Optional[float] = None

    # -- consumer side -----------------------------------------------------

    def done(self) -> bool:
        """Whether the request has been completed (value or error)."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> np.ndarray:
        """Block for the output; raises the request's error if it failed.

        Raises ``TimeoutError`` if the request is still in flight after
        ``timeout`` seconds (the request itself stays pending).
        """
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None
                  ) -> Optional[BaseException]:
        """Block for completion; the error if it failed, else None."""
        if not self._event.wait(timeout):
            raise TimeoutError("request still in flight")
        return self._error

    @property
    def latency_s(self) -> Optional[float]:
        """Submit-to-completion wall time; None while in flight."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def on_done(self, fn) -> None:
        """Register ``fn(self)`` to run when the request completes.

        Runs immediately (on the calling thread) when the request is
        already done, otherwise on whichever thread completes it — a
        server worker, the process-mode collector, or shutdown
        bookkeeping.  This is how a fronting layer (the model fleet)
        chains its own future to a per-model server's response without
        parking a thread per in-flight request.  Callbacks must not
        block and must not raise; exceptions are swallowed (the worker
        that delivered the response is not the right place to crash).
        """
        with self._cb_lock:
            if not self._event.is_set():
                if self._callbacks is None:
                    self._callbacks = []
                self._callbacks.append(fn)
                return
        fn(self)

    # -- producer side (server internals) ----------------------------------

    def _finish(self) -> None:
        self.completed_at = time.monotonic()
        with self._cb_lock:
            self._event.set()
            callbacks, self._callbacks = self._callbacks, None
        for fn in callbacks or ():
            try:
                fn(self)
            except Exception:  # noqa: BLE001 - see on_done contract
                pass

    def _complete(self, value: np.ndarray) -> None:
        self._value = value
        self._finish()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._finish()
