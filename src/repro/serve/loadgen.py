"""Closed- and open-loop load generation against a :class:`Server`.

Two standard benchmarking harnesses:

* **Closed loop** — ``clients`` threads, each submitting its next
  request only after the previous one completed.  Offered load adapts
  to the server (classic throughput measurement; queueing never
  explodes).
* **Open loop** — requests are submitted on a fixed schedule
  (``rps``), regardless of completions.  This is the honest tail-
  latency experiment: when offered load exceeds capacity the bounded
  queue fills and admission control sheds with
  :class:`~repro.serve.QueueFull`, which the report counts instead of
  hiding.

Both record end-to-end latency per completed request into a
:class:`~repro.obs.LatencyHistogram` replica per thread (merged in the
report) and return a JSON-ready :class:`LoadReport`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.obs.hist import LatencyHistogram
from repro.serve.request import (
    DeadlineExceeded,
    PendingResponse,
    QueueFull,
    QuotaExceeded,
)
from repro.serve.server import Server

__all__ = ["LoadGenerator", "LoadReport", "MixReport", "TenantProfile"]

_US = 1e6


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str                      # "closed" | "open"
    duration_s: float
    offered_rps: Optional[float]   # None for closed loop
    clients: Optional[int]         # None for open loop
    sent: int
    completed: int
    rejected: int
    expired: int
    failed: int
    latency_ms: Dict[str, float]
    achieved_rps: float
    quota_rejected: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 3),
            "offered_rps": self.offered_rps,
            "clients": self.clients,
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "quota_rejected": self.quota_rejected,
            "expired": self.expired,
            "failed": self.failed,
            "latency_ms": {k: round(v, 3)
                           for k, v in self.latency_ms.items()},
            "achieved_rps": round(self.achieved_rps, 2),
        }


@dataclass(frozen=True)
class TenantProfile:
    """One tenant's slice of a traffic mix.

    ``share`` is relative (normalized over the mix), ``deadline_ms``
    overrides the per-request deadline (a fleet falls back to the
    tenant's SLO deadline when ``None``).
    """

    tenant: str
    share: float = 1.0
    deadline_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.tenant:
            raise ValueError("tenant must be non-empty")
        if self.share <= 0:
            raise ValueError(f"tenant {self.tenant!r}: share must be "
                             f"positive")
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ValueError(f"tenant {self.tenant!r}: deadline_ms must "
                             f"be positive")


@dataclass(frozen=True)
class MixReport:
    """Outcome of a multi-tenant mix run: one report per tenant."""

    tenants: Dict[str, LoadReport]
    duration_s: float
    offered_rps: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "duration_s": round(self.duration_s, 3),
            "offered_rps": self.offered_rps,
            "tenants": {name: report.as_dict()
                        for name, report in self.tenants.items()},
        }


class _ThreadTally:
    """Per-thread unlocked counters + histogram, merged at report time."""

    def __init__(self) -> None:
        self.sent = 0
        self.completed = 0
        self.rejected = 0
        self.quota_rejected = 0
        self.expired = 0
        self.failed = 0
        self.latency = LatencyHistogram()

    def absorb_result(self, response: PendingResponse) -> None:
        try:
            response.result()
        except DeadlineExceeded:
            self.expired += 1
            return
        except Exception:
            self.failed += 1
            return
        self.completed += 1
        self.latency.record(response.latency_s * _US)


InputSource = Union[np.ndarray, Sequence[np.ndarray],
                    Callable[[int], np.ndarray]]


class LoadGenerator:
    """Drives a started :class:`Server` (or fleet) with synthetic traffic.

    ``inputs`` is either a pre-built batch (``(N, C, H, W)`` array or a
    sequence of ``(C, H, W)`` images, cycled round-robin) or a callable
    ``index -> image`` for caller-controlled payloads.  For
    :meth:`run_mix` against a multi-tenant fleet, ``inputs`` may also
    be a dict keyed by tenant name (each value any of the above) —
    exactly what :meth:`repro.serve.fleet.ModelFleet.sample_inputs`
    produces; tenants with different input shapes each get their own
    pool.
    """

    def __init__(self, server, inputs) -> None:
        self.server = server
        if isinstance(inputs, dict):
            self._tenant_input_fns = {
                tenant: self._make_input_fn(source)
                for tenant, source in inputs.items()}
            self._input_fn = None
        else:
            self._input_fn = self._make_input_fn(inputs)
            self._tenant_input_fns = {}

    @staticmethod
    def _make_input_fn(inputs: InputSource) -> Callable[[int], np.ndarray]:
        if callable(inputs):
            return inputs
        pool = [np.asarray(x) for x in inputs]
        if not pool:
            raise ValueError("need at least one input image")
        return lambda i: pool[i % len(pool)]

    def _tenant_input_fn(self, tenant: str) -> Callable[[int], np.ndarray]:
        if tenant in self._tenant_input_fns:
            return self._tenant_input_fns[tenant]
        if self._input_fn is None:
            raise KeyError(
                f"no inputs for tenant {tenant!r}; dict inputs cover "
                f"{sorted(self._tenant_input_fns)}")
        return self._input_fn

    def _single_input_fn(self) -> Callable[[int], np.ndarray]:
        if self._input_fn is None:
            raise ValueError(
                "dict inputs are tenant-keyed (for run_mix); run_open/"
                "run_closed need a single input source")
        return self._input_fn

    def _submit(self, tenant: Optional[str], x: np.ndarray,
                deadline_ms: Optional[float]) -> PendingResponse:
        """Submit to a plain server or, tenant-tagged, to a fleet."""
        if tenant is not None and hasattr(self.server, "tenants"):
            return self.server.submit(tenant, x, deadline_ms=deadline_ms)
        return self.server.submit(x, deadline_ms=deadline_ms)

    # -- closed loop -------------------------------------------------------

    def run_closed(self, clients: int = 4,
                   duration_s: Optional[float] = None,
                   requests: Optional[int] = None,
                   deadline_ms: Optional[float] = None) -> LoadReport:
        """``clients`` synchronous callers, each one request in flight.

        Stops after ``duration_s`` seconds or once ``requests`` total
        requests have been *sent*, whichever comes first (at least one
        bound is required).
        """
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if duration_s is None and requests is None:
            raise ValueError("need duration_s and/or requests")
        input_fn = self._single_input_fn()
        tallies = [_ThreadTally() for _ in range(clients)]
        ticket = {"next": 0}
        ticket_lock = threading.Lock()
        # monotonic(), matching the server's request timestamps (and
        # valid across worker processes); perf_counter is not.
        started = time.monotonic()
        stop_at = started + duration_s if duration_s is not None else None

        def client(tally: _ThreadTally) -> None:
            while True:
                now = time.monotonic()
                if stop_at is not None and now >= stop_at:
                    return
                with ticket_lock:
                    index = ticket["next"]
                    if requests is not None and index >= requests:
                        return
                    ticket["next"] = index + 1
                tally.sent += 1
                try:
                    response = self.server.submit(
                        input_fn(index), deadline_ms=deadline_ms)
                except QueueFull:
                    tally.rejected += 1
                    continue
                tally.absorb_result(response)

        threads = [threading.Thread(target=client, args=(tally,),
                                    name=f"loadgen-closed-{i}", daemon=True)
                   for i, tally in enumerate(tallies)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        return self._report("closed", elapsed, None, clients, tallies)

    # -- open loop ---------------------------------------------------------

    def run_open(self, rps: float, duration_s: float,
                 deadline_ms: Optional[float] = None,
                 arrivals: str = "uniform",
                 seed: int = 0) -> LoadReport:
        """Scheduled submission for ``duration_s`` seconds.

        ``arrivals`` selects the schedule: ``"uniform"`` submits at
        fixed ``1/rps`` gaps (deterministic, the historical behaviour);
        ``"poisson"`` draws seeded exponential inter-arrival gaps, the
        memoryless arrival process real request traffic approximates —
        its bursts are what actually stress the bounded queue, so tail
        latencies measured under it are the honest ones.  ``seed``
        makes either schedule reproducible (uniform ignores it).

        The submitter never waits for completions; in-flight responses
        are collected after the submission window closes, so rejected
        work shows up as ``rejected`` instead of slowing the schedule.
        """
        if rps <= 0:
            raise ValueError("rps must be positive")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if arrivals not in ("uniform", "poisson"):
            raise ValueError(f"arrivals must be 'uniform' or 'poisson', "
                             f"got {arrivals!r}")
        if arrivals == "poisson":
            rng = np.random.default_rng(seed)
            offsets: List[float] = []
            at = 0.0
            while True:
                at += float(rng.exponential(1.0 / rps))
                if at >= duration_s:
                    break
                offsets.append(at)
            if not offsets:
                offsets = [0.0]
        else:
            interval = 1.0 / rps
            total = max(1, int(round(rps * duration_s)))
            offsets = [index * interval for index in range(total)]
        input_fn = self._single_input_fn()
        tally = _ThreadTally()
        inflight: List[PendingResponse] = []
        started = time.monotonic()
        for index, offset in enumerate(offsets):
            pause = started + offset - time.monotonic()
            if pause > 0:
                time.sleep(pause)
            tally.sent += 1
            try:
                inflight.append(self.server.submit(
                    input_fn(index), deadline_ms=deadline_ms))
            except QueueFull:
                tally.rejected += 1
        for response in inflight:
            tally.absorb_result(response)
        elapsed = time.monotonic() - started
        return self._report("open", elapsed, rps, None, [tally])

    # -- multi-tenant mix --------------------------------------------------

    @staticmethod
    def _poisson_offsets(rng: np.random.Generator, rps: float,
                         duration_s: float) -> List[float]:
        offsets: List[float] = []
        at = 0.0
        while True:
            at += float(rng.exponential(1.0 / rps))
            if at >= duration_s:
                break
            offsets.append(at)
        return offsets or [0.0]

    def run_mix(self, profiles: Sequence[TenantProfile], rps: float,
                duration_s: float, seed: int = 0) -> MixReport:
        """Drive a multi-tenant traffic mix against a fleet.

        ``rps`` is the total offered load; each profile gets
        ``rps * share / sum(shares)`` of it as its own independently
        seeded Poisson stream (``seed + profile index``) on its own
        submitter thread — tenant streams interleave the way real
        mixed traffic does instead of taking turns.  The target is
        normally a :class:`~repro.serve.fleet.ModelFleet` (submissions
        are tenant-tagged); a plain :class:`~repro.serve.Server` also
        works, with the tenant names only labelling the report.
        """
        if not profiles:
            raise ValueError("need at least one tenant profile")
        names = [p.tenant for p in profiles]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenants in mix: {names}")
        if rps <= 0 or duration_s <= 0:
            raise ValueError("rps and duration_s must be positive")
        total_share = sum(p.share for p in profiles)
        tallies = {p.tenant: _ThreadTally() for p in profiles}

        def stream(index: int, profile: TenantProfile) -> None:
            tally = tallies[profile.tenant]
            input_fn = self._tenant_input_fn(profile.tenant)
            rng = np.random.default_rng(seed + index)
            tenant_rps = rps * profile.share / total_share
            offsets = self._poisson_offsets(rng, tenant_rps, duration_s)
            inflight: List[PendingResponse] = []
            started = time.monotonic()
            for i, offset in enumerate(offsets):
                pause = started + offset - time.monotonic()
                if pause > 0:
                    time.sleep(pause)
                tally.sent += 1
                try:
                    inflight.append(self._submit(
                        profile.tenant, input_fn(i),
                        deadline_ms=profile.deadline_ms))
                except QuotaExceeded:
                    tally.quota_rejected += 1
                except QueueFull:
                    tally.rejected += 1
            for response in inflight:
                tally.absorb_result(response)

        started = time.monotonic()
        threads = [threading.Thread(target=stream, args=(i, profile),
                                    name=f"loadgen-mix-{profile.tenant}",
                                    daemon=True)
                   for i, profile in enumerate(profiles)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = max(time.monotonic() - started, 1e-9)
        reports = {
            profile.tenant: self._report(
                "mix", elapsed, rps * profile.share / total_share, None,
                [tallies[profile.tenant]])
            for profile in profiles
        }
        return MixReport(tenants=reports, duration_s=elapsed,
                         offered_rps=rps)

    # -- reporting ---------------------------------------------------------

    @staticmethod
    def _report(mode: str, elapsed: float, rps: Optional[float],
                clients: Optional[int],
                tallies: Sequence[_ThreadTally]) -> LoadReport:
        latency = LatencyHistogram()
        sent = completed = rejected = quota_rejected = 0
        expired = failed = 0
        for tally in tallies:
            sent += tally.sent
            completed += tally.completed
            rejected += tally.rejected
            quota_rejected += tally.quota_rejected
            expired += tally.expired
            failed += tally.failed
            latency.merge(tally.latency)
        summary = latency.summary()
        latency_ms = {key: summary[key] / 1e3
                      for key in ("mean", "min", "max", "p50", "p95", "p99")}
        latency_ms["count"] = summary["count"]
        elapsed = max(elapsed, 1e-9)
        return LoadReport(
            mode=mode,
            duration_s=elapsed,
            offered_rps=rps,
            clients=clients,
            sent=sent,
            completed=completed,
            rejected=rejected,
            quota_rejected=quota_rejected,
            expired=expired,
            failed=failed,
            latency_ms=latency_ms,
            achieved_rps=completed / elapsed,
        )
