"""Closed- and open-loop load generation against a :class:`Server`.

Two standard benchmarking harnesses:

* **Closed loop** — ``clients`` threads, each submitting its next
  request only after the previous one completed.  Offered load adapts
  to the server (classic throughput measurement; queueing never
  explodes).
* **Open loop** — requests are submitted on a fixed schedule
  (``rps``), regardless of completions.  This is the honest tail-
  latency experiment: when offered load exceeds capacity the bounded
  queue fills and admission control sheds with
  :class:`~repro.serve.QueueFull`, which the report counts instead of
  hiding.

Both record end-to-end latency per completed request into a
:class:`~repro.obs.LatencyHistogram` replica per thread (merged in the
report) and return a JSON-ready :class:`LoadReport`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.obs.hist import LatencyHistogram
from repro.serve.request import (
    DeadlineExceeded,
    PendingResponse,
    QueueFull,
)
from repro.serve.server import Server

__all__ = ["LoadGenerator", "LoadReport"]

_US = 1e6


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one load-generation run."""

    mode: str                      # "closed" | "open"
    duration_s: float
    offered_rps: Optional[float]   # None for closed loop
    clients: Optional[int]         # None for open loop
    sent: int
    completed: int
    rejected: int
    expired: int
    failed: int
    latency_ms: Dict[str, float]
    achieved_rps: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "duration_s": round(self.duration_s, 3),
            "offered_rps": self.offered_rps,
            "clients": self.clients,
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "failed": self.failed,
            "latency_ms": {k: round(v, 3)
                           for k, v in self.latency_ms.items()},
            "achieved_rps": round(self.achieved_rps, 2),
        }


class _ThreadTally:
    """Per-thread unlocked counters + histogram, merged at report time."""

    def __init__(self) -> None:
        self.sent = 0
        self.completed = 0
        self.rejected = 0
        self.expired = 0
        self.failed = 0
        self.latency = LatencyHistogram()

    def absorb_result(self, response: PendingResponse) -> None:
        try:
            response.result()
        except DeadlineExceeded:
            self.expired += 1
            return
        except Exception:
            self.failed += 1
            return
        self.completed += 1
        self.latency.record(response.latency_s * _US)


InputSource = Union[np.ndarray, Sequence[np.ndarray],
                    Callable[[int], np.ndarray]]


class LoadGenerator:
    """Drives a started :class:`Server` with synthetic request traffic.

    ``inputs`` is either a pre-built batch (``(N, C, H, W)`` array or a
    sequence of ``(C, H, W)`` images, cycled round-robin) or a callable
    ``index -> image`` for caller-controlled payloads.
    """

    def __init__(self, server: Server, inputs: InputSource) -> None:
        self.server = server
        if callable(inputs):
            self._input_fn = inputs
        else:
            pool = [np.asarray(x) for x in inputs]
            if not pool:
                raise ValueError("need at least one input image")
            self._input_fn = lambda i: pool[i % len(pool)]

    # -- closed loop -------------------------------------------------------

    def run_closed(self, clients: int = 4,
                   duration_s: Optional[float] = None,
                   requests: Optional[int] = None,
                   deadline_ms: Optional[float] = None) -> LoadReport:
        """``clients`` synchronous callers, each one request in flight.

        Stops after ``duration_s`` seconds or once ``requests`` total
        requests have been *sent*, whichever comes first (at least one
        bound is required).
        """
        if clients < 1:
            raise ValueError("clients must be >= 1")
        if duration_s is None and requests is None:
            raise ValueError("need duration_s and/or requests")
        tallies = [_ThreadTally() for _ in range(clients)]
        ticket = {"next": 0}
        ticket_lock = threading.Lock()
        # monotonic(), matching the server's request timestamps (and
        # valid across worker processes); perf_counter is not.
        started = time.monotonic()
        stop_at = started + duration_s if duration_s is not None else None

        def client(tally: _ThreadTally) -> None:
            while True:
                now = time.monotonic()
                if stop_at is not None and now >= stop_at:
                    return
                with ticket_lock:
                    index = ticket["next"]
                    if requests is not None and index >= requests:
                        return
                    ticket["next"] = index + 1
                tally.sent += 1
                try:
                    response = self.server.submit(
                        self._input_fn(index), deadline_ms=deadline_ms)
                except QueueFull:
                    tally.rejected += 1
                    continue
                tally.absorb_result(response)

        threads = [threading.Thread(target=client, args=(tally,),
                                    name=f"loadgen-closed-{i}", daemon=True)
                   for i, tally in enumerate(tallies)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.monotonic() - started
        return self._report("closed", elapsed, None, clients, tallies)

    # -- open loop ---------------------------------------------------------

    def run_open(self, rps: float, duration_s: float,
                 deadline_ms: Optional[float] = None,
                 arrivals: str = "uniform",
                 seed: int = 0) -> LoadReport:
        """Scheduled submission for ``duration_s`` seconds.

        ``arrivals`` selects the schedule: ``"uniform"`` submits at
        fixed ``1/rps`` gaps (deterministic, the historical behaviour);
        ``"poisson"`` draws seeded exponential inter-arrival gaps, the
        memoryless arrival process real request traffic approximates —
        its bursts are what actually stress the bounded queue, so tail
        latencies measured under it are the honest ones.  ``seed``
        makes either schedule reproducible (uniform ignores it).

        The submitter never waits for completions; in-flight responses
        are collected after the submission window closes, so rejected
        work shows up as ``rejected`` instead of slowing the schedule.
        """
        if rps <= 0:
            raise ValueError("rps must be positive")
        if duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if arrivals not in ("uniform", "poisson"):
            raise ValueError(f"arrivals must be 'uniform' or 'poisson', "
                             f"got {arrivals!r}")
        if arrivals == "poisson":
            rng = np.random.default_rng(seed)
            offsets: List[float] = []
            at = 0.0
            while True:
                at += float(rng.exponential(1.0 / rps))
                if at >= duration_s:
                    break
                offsets.append(at)
            if not offsets:
                offsets = [0.0]
        else:
            interval = 1.0 / rps
            total = max(1, int(round(rps * duration_s)))
            offsets = [index * interval for index in range(total)]
        tally = _ThreadTally()
        inflight: List[PendingResponse] = []
        started = time.monotonic()
        for index, offset in enumerate(offsets):
            pause = started + offset - time.monotonic()
            if pause > 0:
                time.sleep(pause)
            tally.sent += 1
            try:
                inflight.append(self.server.submit(
                    self._input_fn(index), deadline_ms=deadline_ms))
            except QueueFull:
                tally.rejected += 1
        for response in inflight:
            tally.absorb_result(response)
        elapsed = time.monotonic() - started
        return self._report("open", elapsed, rps, None, [tally])

    # -- reporting ---------------------------------------------------------

    @staticmethod
    def _report(mode: str, elapsed: float, rps: Optional[float],
                clients: Optional[int],
                tallies: Sequence[_ThreadTally]) -> LoadReport:
        latency = LatencyHistogram()
        sent = completed = rejected = expired = failed = 0
        for tally in tallies:
            sent += tally.sent
            completed += tally.completed
            rejected += tally.rejected
            expired += tally.expired
            failed += tally.failed
            latency.merge(tally.latency)
        summary = latency.summary()
        latency_ms = {key: summary[key] / 1e3
                      for key in ("mean", "min", "max", "p50", "p95", "p99")}
        latency_ms["count"] = summary["count"]
        elapsed = max(elapsed, 1e-9)
        return LoadReport(
            mode=mode,
            duration_s=elapsed,
            offered_rps=rps,
            clients=clients,
            sent=sent,
            completed=completed,
            rejected=rejected,
            expired=expired,
            failed=failed,
            latency_ms=latency_ms,
            achieved_rps=completed / elapsed,
        )
