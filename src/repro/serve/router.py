"""Online Pareto-driven variant routing.

The paper computes an accuracy/latency/energy frontier *offline*
(Figure 4, :mod:`repro.core.pareto`); this module consults it *online*.
A :class:`VariantRouter` owns a candidate set of resident model
variants — each scored once by the analytical accelerator simulator
(predicted latency/energy) and by the published-accuracy table
(:func:`repro.models.accuracy.top1_accuracy`) — keeps only the
accuracy/latency Pareto frontier of that set, and picks, per SLO
class, the most accurate variant whose *observed* tail latency fits
the class's deadline:

* **Initial placement** — the most accurate frontier variant whose
  expected per-request time fits within ``headroom x deadline``.
* **Demotion** — when the live windowed p95/p99 of the variant a class
  is on breaches ``headroom x deadline``, step one variant down the
  frontier (faster, less accurate) immediately.
* **Promotion** — after ``hysteresis_s`` without a switch, if the next
  variant up would fit comfortably (observed tail extrapolated by the
  predicted-latency ratio stays under ``promote_margin x deadline``),
  step back up.  ``promote_margin < headroom`` gives the loop a dead
  band so it cannot flap between two variants.

Observed tails come from the per-model cumulative latency histograms
the servers already keep (:meth:`repro.serve.Server.latency_histogram`)
— the router diffs successive snapshots (:meth:`LatencyHistogram.since`)
into a rolling window, because lifetime percentiles never forget a
breach and would pin every class to the floor forever.

The router itself is transport-agnostic: it never touches a server.
:class:`repro.serve.fleet.ModelFleet` feeds it snapshots and asks it
``route(class_name)`` per request; tests drive it with synthetic
histograms and a fake clock.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence

from repro import obs
from repro.core.pareto import ParetoFrontier
from repro.graph.network_spec import NetworkSpec
from repro.models.accuracy import top1_accuracy
from repro.obs.hist import LatencyHistogram

__all__ = [
    "RoutedVariant",
    "RouterConfig",
    "VariantRouter",
    "build_candidate_set",
]

_MS = 1e3  # histograms record microseconds; the router reasons in ms


@dataclass(frozen=True)
class RoutedVariant:
    """One resident variant as the router sees it.

    ``predicted_ms`` and ``energy`` come from the accelerator
    simulator; ``expected_ms`` is the per-request service time the
    fleet actually imposes (the sim-paced per-image time, or the
    predicted time when nothing better is known) and seeds initial
    placement before any live observations exist.
    """

    model: str
    top1_accuracy: float
    predicted_ms: float
    energy: float
    expected_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.predicted_ms <= 0:
            raise ValueError(f"{self.model}: predicted_ms must be positive")
        if self.expected_ms <= 0:
            object.__setattr__(self, "expected_ms", self.predicted_ms)

    def dominates(self, other: "RoutedVariant") -> bool:
        """Two-axis dominance: accuracy up, per-request latency down.

        The latency axis is ``expected_ms`` — what a request actually
        pays (sim-paced service time when available, the simulator's
        prediction otherwise).  Energy is carried for reporting but
        kept out of the dominance test — the router trades accuracy
        against deadline fit, and a two-axis frontier sorted by
        latency has strictly increasing accuracy, which is what makes
        "one step down = faster, one step up = more accurate" well
        defined.
        """
        at_least = (self.top1_accuracy >= other.top1_accuracy
                    and self.expected_ms <= other.expected_ms)
        strictly = (self.top1_accuracy > other.top1_accuracy
                    or self.expected_ms < other.expected_ms)
        return at_least and strictly


@dataclass(frozen=True)
class RouterConfig:
    """Knobs of the routing control loop.

    ``tail`` is which percentile of the observation window is compared
    against ``headroom x deadline``; ``min_samples`` gates decisions
    until the window is statistically meaningful; ``refresh_s`` rate-
    limits snapshotting; the window spans the last
    ``window_refreshes`` snapshot deltas.  ``promote_margin`` must be
    strictly below ``headroom`` (the anti-flap dead band).
    """

    array_size: int = 32
    rf_entries: int = 8
    tail: str = "p95"
    headroom: float = 0.8
    promote_margin: float = 0.5
    min_samples: int = 16
    hysteresis_s: float = 2.0
    refresh_s: float = 0.25
    window_refreshes: int = 4

    def __post_init__(self) -> None:
        if self.tail not in ("p50", "p95", "p99"):
            raise ValueError(f"tail must be p50/p95/p99, got {self.tail!r}")
        if not 0 < self.headroom <= 1:
            raise ValueError("headroom must be in (0, 1]")
        if not 0 < self.promote_margin < self.headroom:
            raise ValueError(
                "promote_margin must be in (0, headroom) — the gap is the "
                "anti-flap dead band")
        if self.min_samples < 1:
            raise ValueError("min_samples must be >= 1")
        if self.hysteresis_s < 0 or self.refresh_s <= 0:
            raise ValueError("hysteresis_s must be >= 0, refresh_s > 0")
        if self.window_refreshes < 1:
            raise ValueError("window_refreshes must be >= 1")

    @property
    def tail_q(self) -> float:
        return {"p50": 50.0, "p95": 95.0, "p99": 99.0}[self.tail]

    def as_dict(self) -> Dict[str, object]:
        return {
            "array_size": self.array_size,
            "rf_entries": self.rf_entries,
            "tail": self.tail,
            "headroom": self.headroom,
            "promote_margin": self.promote_margin,
            "min_samples": self.min_samples,
            "hysteresis_s": self.hysteresis_s,
            "refresh_s": self.refresh_s,
            "window_refreshes": self.window_refreshes,
        }


def build_candidate_set(
    specs: Sequence[NetworkSpec],
    config: Optional[RouterConfig] = None,
    accuracy_of: Optional[Callable[[str], float]] = None,
    accelerator=None,
    expected_ms_of: Optional[Mapping[str, float]] = None,
) -> List[RoutedVariant]:
    """Score ``specs`` into :class:`RoutedVariant` candidates.

    Latency/energy come from one simulator run per spec on the
    configured machine; accuracy from the published table.  A spec with
    no published accuracy is a hard error, not a silent skip — a
    variant the router cannot place on the accuracy axis must be
    excluded *explicitly* by the operator, otherwise the candidate set
    silently shrinks and the "most accurate that fits" guarantee is
    hollow.  ``expected_ms_of`` (slug/name -> ms) overrides the
    per-request time used for initial placement — the fleet passes the
    sim-paced service times here so placement matches what requests
    will actually experience.
    """
    from repro.accel.hybrid import Squeezelerator

    config = config or RouterConfig()
    accuracy_of = accuracy_of or top1_accuracy
    accelerator = accelerator or Squeezelerator(
        array_size=config.array_size, rf_entries=config.rf_entries)
    missing = []
    variants: List[RoutedVariant] = []
    for spec in specs:
        try:
            accuracy = accuracy_of(spec.name)
        except KeyError:
            missing.append(spec.name)
            continue
        report = accelerator.run(spec)
        expected = (expected_ms_of or {}).get(spec.name, 0.0)
        variants.append(RoutedVariant(
            model=spec.name,
            top1_accuracy=accuracy,
            predicted_ms=report.inference_ms,
            energy=report.total_energy,
            expected_ms=expected,
        ))
    if missing:
        raise ValueError(
            "no published accuracy for routable variant(s) "
            f"{sorted(missing)}: every candidate must appear in "
            "repro.models.accuracy (or the accuracy_of override) — "
            "drop it from the route group explicitly instead")
    return variants


@dataclass
class _TailTracker:
    """Rolling window of histogram deltas for one resident model."""

    window: int
    last: Optional[LatencyHistogram] = None
    deltas: Deque[LatencyHistogram] = field(default_factory=deque)

    def observe(self, cumulative: LatencyHistogram) -> None:
        if self.last is not None:
            try:
                delta = cumulative.since(self.last)
            except ValueError:
                # Layout change or reset (e.g. a restarted server):
                # start the window over rather than crash the loop.
                self.deltas.clear()
                delta = None
            if delta is not None and delta.count:
                self.deltas.append(delta)
                while len(self.deltas) > self.window:
                    self.deltas.popleft()
        self.last = cumulative.copy()

    def tail_ms(self, q: float, min_samples: int) -> Optional[float]:
        """Windowed q-th percentile in ms; None until enough samples."""
        if not self.deltas:
            return None
        merged = self.deltas[0].copy()
        for delta in list(self.deltas)[1:]:
            merged.merge(delta)
        if merged.count < min_samples:
            return None
        return merged.percentile(q) / _MS


@dataclass
class _ClassState:
    deadline_ms: float
    index: int            # position in the latency-sorted frontier
    last_switch: float
    decisions: Dict[str, int] = field(default_factory=dict)
    switches: List[Dict[str, object]] = field(default_factory=list)


class VariantRouter:
    """Per-SLO-class variant selection over a live Pareto frontier.

    Construct with the scored candidate set (``build_candidate_set``),
    register each SLO class, then feed it cumulative latency
    histograms (``observe``) and periodic ``refresh`` calls; ``route``
    answers which variant a class's next request should hit.  All
    entry points are thread-safe; ``clock`` is injectable for tests.
    """

    def __init__(self, variants: Sequence[RoutedVariant],
                 config: Optional[RouterConfig] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if not variants:
            raise ValueError("need at least one candidate variant")
        self.config = config or RouterConfig()
        self._clock = clock
        frontier: ParetoFrontier[RoutedVariant] = ParetoFrontier(variants)
        # Latency-sorted: index 0 is the fastest (least accurate);
        # two-axis dominance makes accuracy strictly increase with it.
        self.frontier: List[RoutedVariant] = frontier.sorted(
            key=lambda v: v.expected_ms)
        self.dominated: List[RoutedVariant] = [
            v for v in variants if v not in frontier]
        self._classes: Dict[str, _ClassState] = {}
        self._tails: Dict[str, _TailTracker] = {
            v.model: _TailTracker(window=self.config.window_refreshes)
            for v in self.frontier}
        self._lock = threading.Lock()

    # -- registration ------------------------------------------------------

    def register_class(self, name: str, deadline_ms: float) -> str:
        """Place an SLO class on the frontier; returns the initial model.

        Initial placement is prediction-only (no live stats yet): the
        most accurate variant whose expected per-request time fits in
        ``headroom x deadline``, or the fastest variant when nothing
        fits (serve best-effort rather than refuse).
        """
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        budget = self.config.headroom * deadline_ms
        index = 0
        for i, variant in enumerate(self.frontier):
            if variant.expected_ms <= budget:
                index = i
        with self._lock:
            self._classes[name] = _ClassState(
                deadline_ms=deadline_ms, index=index,
                last_switch=self._clock())
            return self.frontier[index].model

    # -- live feedback -----------------------------------------------------

    def observe(self, model: str, cumulative: LatencyHistogram) -> None:
        """Feed one model's cumulative latency histogram snapshot."""
        with self._lock:
            tracker = self._tails.get(model)
            if tracker is not None:
                tracker.observe(cumulative)

    def refresh(self, now: Optional[float] = None) -> List[Dict[str, object]]:
        """Run one control-loop step; returns the switches it made.

        Demotion is immediate (a breached tail is an emergency);
        promotion waits out ``hysteresis_s`` since the last switch and
        extrapolates the observed tail by the predicted-latency ratio
        of the next variant up — the simulator's relative speeds are
        trusted even where its absolute times are not.
        """
        now = self._clock() if now is None else now
        switches: List[Dict[str, object]] = []
        with self._lock:
            for name, state in self._classes.items():
                current = self.frontier[state.index]
                observed = self._tails[current.model].tail_ms(
                    self.config.tail_q, self.config.min_samples)
                if observed is None:
                    continue
                budget = self.config.headroom * state.deadline_ms
                if observed > budget and state.index > 0:
                    switches.append(self._switch(
                        name, state, state.index - 1, now,
                        reason="demote", observed_ms=observed))
                    continue
                if (state.index + 1 < len(self.frontier)
                        and now - state.last_switch
                        >= self.config.hysteresis_s):
                    nxt = self.frontier[state.index + 1]
                    est = observed * (nxt.expected_ms
                                      / current.expected_ms)
                    if est <= self.config.promote_margin * state.deadline_ms:
                        switches.append(self._switch(
                            name, state, state.index + 1, now,
                            reason="promote", observed_ms=observed))
        for switch in switches:
            obs.count("fleet.route.switch")
        return switches

    def _switch(self, name: str, state: _ClassState, to_index: int,
                now: float, reason: str, observed_ms: float
                ) -> Dict[str, object]:
        record = {
            "class": name,
            "reason": reason,
            "from": self.frontier[state.index].model,
            "to": self.frontier[to_index].model,
            "observed_ms": observed_ms,
            "deadline_ms": state.deadline_ms,
        }
        state.index = to_index
        state.last_switch = now
        state.switches.append(record)
        return record

    # -- dispatch ----------------------------------------------------------

    def route(self, class_name: str) -> str:
        """The variant the class's next request should be served by."""
        with self._lock:
            state = self._classes[class_name]
            model = self.frontier[state.index].model
            state.decisions[model] = state.decisions.get(model, 0) + 1
        obs.count("fleet.route.decision")
        obs.count(f"fleet.route.{class_name}.{model}")
        return model

    def current(self, class_name: str) -> str:
        """The class's current variant, without counting a decision."""
        with self._lock:
            return self.frontier[self._classes[class_name].index].model

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-ready routing state: frontier, per-class placement,
        decision counts, and the switch history."""
        with self._lock:
            return {
                "frontier": [
                    {"model": v.model, "top1_accuracy": v.top1_accuracy,
                     "predicted_ms": v.predicted_ms, "energy": v.energy,
                     "expected_ms": v.expected_ms}
                    for v in self.frontier],
                "dominated": [v.model for v in self.dominated],
                "classes": {
                    name: {
                        "deadline_ms": state.deadline_ms,
                        "current": self.frontier[state.index].model,
                        "decisions": dict(state.decisions),
                        "switches": list(state.switches),
                    }
                    for name, state in self._classes.items()},
            }
