"""Simulator-backed service times: pace the server like the accelerator.

The numpy substrate executes batches however fast the host CPU happens
to be; the interesting deployment question is *what the Squeezelerator
would sustain*.  :func:`accelerator_service_time` closes that gap: it
runs the analytical simulator once, converts the network's batch-1
cycle count to seconds at the machine's clock, and returns a
``batch_size -> seconds`` model that :class:`~repro.serve.ServerConfig`
plugs in as ``service_time``.  Workers then sleep out the difference
between the host's compute time and the modelled accelerator time, so
measured throughput and tail latency are the accelerator's, not the
host's.

The Squeezelerator is a batch-1 engine — images of one batch stream
through sequentially, so a batch of B costs ``B x`` the per-image
cycles (no batching economy beyond the weight-fetch amortization the
DRAM model already applies at batch 1).  Dynamic batching still pays
off operationally (fewer queue/dispatch turnarounds), but the knee of
the throughput curve moves to where the modelled hardware saturates.

``time_scale`` compresses modelled time (``0.1`` = tenfold fast-
forward) so long sweeps can run quickly while preserving ratios.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.accel.config import AcceleratorConfig, squeezelerator
from repro.accel.simulator import simulate
from repro.graph.network_spec import NetworkSpec

__all__ = ["accelerator_service_time"]


def accelerator_service_time(
    network: NetworkSpec,
    config: Optional[AcceleratorConfig] = None,
    array_size: int = 32,
    rf_entries: int = 8,
    time_scale: float = 1.0,
) -> Callable[[int], float]:
    """A ``batch_size -> seconds`` model from one simulator run.

    ``config`` overrides the machine entirely; otherwise a
    ``squeezelerator(array_size, rf_entries)`` is simulated.  The
    returned callable carries the per-image latency as
    ``per_image_s`` and the underlying report as ``report`` for
    display/bookkeeping.
    """
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    machine = config or squeezelerator(array_size, rf_entries)
    report = simulate(network, machine)
    per_image_s = report.inference_ms / 1e3 * time_scale

    def service_time(batch_size: int) -> float:
        return per_image_s * batch_size

    service_time.per_image_s = per_image_s
    service_time.report = report
    return service_time
