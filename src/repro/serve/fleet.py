"""Multi-tenant model fleet: several resident models, one admission plane.

:class:`ModelFleet` is the deployment story the paper's frontier was
always pointing at.  Each resident model gets its own
:class:`~repro.serve.Server` (plan, arena, worker pool — thread or
process mode, optionally paced to the simulated Squeezelerator);
in front of them sits one multi-tenant admission plane:

* per-tenant :class:`~repro.serve.SLOClass` contracts (deadline,
  weighted-fair share, token-bucket quota),
* a :class:`~repro.serve.WeightedFairQueue` the scheduler thread
  drains in weighted-fair order,
* and a :class:`~repro.serve.VariantRouter` per route group that picks
  which frontier variant serves each routed tenant's next request from
  live windowed tail percentiles — the offline Pareto frontier of
  :mod:`repro.core.pareto`, consulted online.

Request flow: ``submit(tenant, x)`` checks the tenant's quota
(:class:`~repro.serve.QuotaExceeded`), stamps the SLO deadline, and
enqueues into the tenant's fair-queue lane
(:class:`~repro.serve.QueueFull` when the lane is at depth).  The
scheduler thread pops weighted-fair, asks the router (or the pinned
slug) for a model, and submits to that model's server, chaining the
inner future to the caller's via ``on_done`` — no thread is parked per
in-flight request.  Every accepted request completes, loudly on
failure, exactly as the single-server runtime guarantees.

The fleet also closes the co-design loop in the other direction:
:meth:`ModelFleet.export_workload` summarizes the observed traffic mix
(per-model shares, the binding deadline) into the inputs
:func:`repro.core.search.hardware_aware_search` and
:class:`repro.core.codesign.CoDesignLoop` consume, so tomorrow's
accelerator can be tailored to today's measured traffic.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.graph.network_spec import NetworkSpec
from repro.nn.network import GraphNetwork
from repro.obs.hist import LatencyHistogram
from repro.serve.request import (
    DeadlineExceeded,
    PendingResponse,
    QueueFull,
    QuotaExceeded,
    ServeError,
    ServerClosed,
)
from repro.serve.router import RouterConfig, VariantRouter, build_candidate_set
from repro.serve.server import Server, ServerConfig, ServerStats
from repro.serve.simtime import accelerator_service_time
from repro.serve.tenancy import SLOClass, TokenBucket, WeightedFairQueue

__all__ = [
    "FleetConfig",
    "FleetModelSpec",
    "FleetStats",
    "FleetWorkload",
    "ModelFleet",
    "PacingSpec",
    "WorkloadEntry",
]

_US = 1e6


def _build_spec(slug: str) -> NetworkSpec:
    # Lazy import: the CLI imports fleet for --fleet mode, and fleet
    # needs the CLI's slug table — break the cycle at call time.
    from repro.serve.cli import build_spec
    return build_spec(slug)


@dataclass(frozen=True)
class PacingSpec:
    """How resident servers are paced.

    ``sim=True`` paces every server to the analytical simulator's
    per-image time on a ``squeezelerator(array_size, rf_entries)``
    machine (:func:`repro.serve.accelerator_service_time`) — the same
    machine the router scores candidates on, so predicted and imposed
    latencies agree.  ``time_scale`` compresses modelled time.
    """

    sim: bool = False
    array_size: int = 32
    rf_entries: int = 8
    time_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.array_size < 1 or self.rf_entries < 1:
            raise ValueError("array_size and rf_entries must be >= 1")
        if self.time_scale <= 0:
            raise ValueError("time_scale must be positive")

    def as_dict(self) -> Dict[str, object]:
        return {"sim": self.sim, "array_size": self.array_size,
                "rf_entries": self.rf_entries,
                "time_scale": self.time_scale}


@dataclass(frozen=True)
class FleetModelSpec:
    """One resident model's server allocation.

    ``slug`` resolves through the ``repro-serve`` slug table (or any
    canonical zoo name).  The remaining fields mirror
    :class:`~repro.serve.ServerConfig` per model — a heavyweight
    detector can get process-mode workers while the classifiers share
    thread pools.  ``service_time`` (not serialized) overrides pacing
    for this model; tests use it to impose exact synthetic speeds.
    """

    slug: str
    workers: int = 1
    max_batch_size: int = 4
    max_wait_ms: float = 2.0
    queue_depth: int = 64
    worker_mode: str = "thread"
    compiled: bool = False
    quantized_bits: Optional[int] = None
    arena_trim_bytes: Optional[int] = None
    service_time: Optional[Callable[[int], float]] = None

    def __post_init__(self) -> None:
        if not self.slug:
            raise ValueError("model slug must be non-empty")

    def as_dict(self) -> Dict[str, object]:
        return {
            "slug": self.slug,
            "workers": self.workers,
            "max_batch_size": self.max_batch_size,
            "max_wait_ms": self.max_wait_ms,
            "queue_depth": self.queue_depth,
            "worker_mode": self.worker_mode,
            "compiled": self.compiled,
            "quantized_bits": self.quantized_bits,
            "arena_trim_bytes": self.arena_trim_bytes,
        }


def _from_keys(cls, payload: Mapping[str, object], context: str):
    try:
        return cls(**payload)
    except TypeError as error:
        raise ValueError(f"{context}: {error}") from None


@dataclass(frozen=True)
class FleetConfig:
    """The whole fleet, declaratively — what ``fleet.json`` deserializes to.

    Validation is eager and cross-referencing: every slug a tenant pins
    or routes to must be a resident model, names must be unique, and a
    route group needs at least two candidates (routing between one
    variant is a pinned tenant wearing a costume).
    """

    tenants: Tuple[SLOClass, ...]
    models: Tuple[FleetModelSpec, ...]
    pacing: PacingSpec = PacingSpec()
    router: RouterConfig = RouterConfig()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        object.__setattr__(self, "models", tuple(self.models))
        if not self.tenants:
            raise ValueError("fleet needs at least one tenant")
        if not self.models:
            raise ValueError("fleet needs at least one resident model")
        names = [t.name for t in self.tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names}")
        slugs = [m.slug for m in self.models]
        if len(set(slugs)) != len(slugs):
            raise ValueError(f"duplicate model slugs in {slugs}")
        resident = set(slugs)
        for tenant in self.tenants:
            wanted = [tenant.model] if tenant.model else list(tenant.route)
            missing = [slug for slug in wanted if slug not in resident]
            if missing:
                raise ValueError(
                    f"tenant {tenant.name!r} references non-resident "
                    f"model(s) {missing}; resident: {sorted(resident)}")
            if tenant.route and len(tenant.route) < 2:
                raise ValueError(
                    f"tenant {tenant.name!r}: a route group needs >= 2 "
                    f"candidates (pin model= for a single variant)")

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FleetConfig":
        known = {"tenants", "models", "pacing", "router", "seed"}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(
                f"unknown fleet config key(s) {sorted(unknown)}; "
                f"known: {sorted(known)}")
        if "tenants" not in payload or "models" not in payload:
            raise ValueError("fleet config needs 'tenants' and 'models'")
        tenants = tuple(
            _from_keys(SLOClass, {**t, "route": tuple(t.get("route", ()))},
                       f"tenant #{i}")
            for i, t in enumerate(payload["tenants"]))
        models = tuple(
            _from_keys(FleetModelSpec, m, f"model #{i}")
            for i, m in enumerate(payload["models"]))
        pacing = _from_keys(PacingSpec, payload.get("pacing", {}), "pacing")
        router = _from_keys(RouterConfig, payload.get("router", {}),
                            "router")
        return cls(tenants=tenants, models=models, pacing=pacing,
                   router=router, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_json(cls, path) -> "FleetConfig":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenants": [t.as_dict() for t in self.tenants],
            "models": [m.as_dict() for m in self.models],
            "pacing": self.pacing.as_dict(),
            "router": self.router.as_dict(),
            "seed": self.seed,
        }


@dataclass(frozen=True)
class WorkloadEntry:
    """One model's slice of the observed traffic mix."""

    model: str
    spec: NetworkSpec
    share: float
    deadline_ms: float

    def as_dict(self) -> Dict[str, object]:
        return {"model": self.model, "share": round(self.share, 4),
                "deadline_ms": self.deadline_ms}


@dataclass(frozen=True)
class FleetWorkload:
    """The fleet's observed traffic summarized for the design tools.

    ``seed_network()`` is the dominant-share spec — the network
    :class:`~repro.core.codesign.CoDesignLoop` should tailor the
    machine to; ``search_inputs()`` are keyword arguments for
    :func:`~repro.core.search.hardware_aware_search` (the machine
    config matching the fleet's pacing, plus the seed), with
    ``latency_budget_ms`` as the natural argument to the result's
    ``best_under_latency``.
    """

    entries: Tuple[WorkloadEntry, ...]
    latency_budget_ms: float
    array_size: int
    rf_entries: int
    seed: int = 0

    def seed_network(self) -> NetworkSpec:
        if not self.entries:
            raise ValueError("no traffic observed — nothing to seed with")
        return max(self.entries, key=lambda e: e.share).spec

    def search_inputs(self) -> Dict[str, object]:
        from repro.accel.config import squeezelerator
        return {
            "config": squeezelerator(self.array_size, self.rf_entries),
            "seed": self.seed,
        }

    def as_dict(self) -> Dict[str, object]:
        return {
            "entries": [e.as_dict() for e in self.entries],
            "latency_budget_ms": self.latency_budget_ms,
            "array_size": self.array_size,
            "rf_entries": self.rf_entries,
            "seed": self.seed,
        }


@dataclass(frozen=True)
class FleetStats:
    """Point-in-time roll-up of the whole fleet."""

    tenants: Dict[str, Dict[str, object]]
    models: Dict[str, ServerStats]
    routing: Dict[str, Dict[str, object]]
    elapsed_s: float

    def as_dict(self) -> Dict[str, object]:
        return {
            "tenants": {name: dict(stats)
                        for name, stats in self.tenants.items()},
            "models": {slug: stats.as_dict()
                       for slug, stats in self.models.items()},
            "routing": {group: dict(stats)
                        for group, stats in self.routing.items()},
            "elapsed_s": round(self.elapsed_s, 3),
        }


class _FleetItem:
    """One queued fleet request: payload, outer future, absolute deadline."""

    __slots__ = ("x", "response", "deadline_at")

    def __init__(self, x: np.ndarray, response: PendingResponse,
                 deadline_at: float) -> None:
        self.x = x
        self.response = response
        self.deadline_at = deadline_at


class _TenantState:
    """Mutable per-tenant bookkeeping (counters under ``lock``)."""

    def __init__(self, slo: SLOClass, bucket: Optional[TokenBucket],
                 input_shape: Tuple[int, int, int]) -> None:
        self.slo = slo
        self.bucket = bucket
        self.input_shape = input_shape
        self.lock = threading.Lock()
        self.accepted = 0
        self.quota_rejected = 0
        self.shed = 0
        self.expired = 0
        self.completed = 0
        self.failed = 0
        self.latency = LatencyHistogram()
        self.dispatched: Dict[str, int] = {}


class ModelFleet:
    """Several resident models behind one multi-tenant admission plane.

    ``accuracy_of`` overrides the published-accuracy table for router
    candidate scoring (tests route between synthetic specs);
    ``clock`` is injectable for deterministic tests.  Use as a context
    manager, exactly like :class:`~repro.serve.Server`::

        config = FleetConfig.from_json("fleet.json")
        with ModelFleet(config) as fleet:
            future = fleet.submit("interactive", image)
            logits = future.result()
            print(fleet.stats().as_dict())
    """

    def __init__(self, config: FleetConfig,
                 accuracy_of: Optional[Callable[[str], float]] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.config = config
        self._clock = clock
        self._lock = threading.Lock()
        self._started = False
        self._closed = False
        self._started_at: Optional[float] = None
        self._stopped_at: Optional[float] = None

        # -- resident models: spec + server per slug ----------------------
        self._specs: Dict[str, NetworkSpec] = {}
        self._servers: Dict[str, Server] = {}
        self._expected_ms: Dict[str, float] = {}
        self._name_to_slug: Dict[str, str] = {}
        rng = np.random.default_rng(config.seed)
        for model in config.models:
            spec = _build_spec(model.slug)
            self._specs[model.slug] = spec
            self._name_to_slug[spec.name] = model.slug
            service_time = model.service_time
            if service_time is None and config.pacing.sim:
                service_time = accelerator_service_time(
                    spec,
                    array_size=config.pacing.array_size,
                    rf_entries=config.pacing.rf_entries,
                    time_scale=config.pacing.time_scale)
            if service_time is not None:
                per_image_s = getattr(service_time, "per_image_s",
                                      service_time(1))
                self._expected_ms[spec.name] = per_image_s * 1e3
            net = GraphNetwork(spec, rng=rng, batch_norm=True).eval()
            server_config = ServerConfig(
                workers=model.workers,
                max_batch_size=model.max_batch_size,
                max_wait_ms=model.max_wait_ms,
                queue_depth=model.queue_depth,
                service_time=service_time,
                worker_mode=model.worker_mode,
                compiled=model.compiled,
                quantized_bits=model.quantized_bits,
                arena_trim_bytes=model.arena_trim_bytes,
            )
            self._servers[model.slug] = Server.for_network(
                net, server_config, name=f"fleet:{model.slug}")

        # -- routers: one per distinct route group ------------------------
        self._routers: Dict[Tuple[str, ...], VariantRouter] = {}
        self._tenant_router: Dict[str, Optional[VariantRouter]] = {}
        for tenant in config.tenants:
            if not tenant.route:
                self._tenant_router[tenant.name] = None
                continue
            group = tenant.route
            if group not in self._routers:
                specs = [self._specs[slug] for slug in group]
                shapes = {self._input_shape(slug) for slug in group}
                if len(shapes) != 1:
                    raise ValueError(
                        f"route group {list(group)} mixes input shapes "
                        f"{sorted(shapes)}; a tenant's requests must fit "
                        f"every candidate")
                self._routers[group] = VariantRouter(
                    build_candidate_set(
                        specs, config.router, accuracy_of=accuracy_of,
                        expected_ms_of=self._expected_ms),
                    config.router, clock=clock)
            router = self._routers[group]
            router.register_class(tenant.name, tenant.deadline_ms)
            self._tenant_router[tenant.name] = router

        # -- tenants: admission state -------------------------------------
        self._tenants: Dict[str, _TenantState] = {}
        for tenant in config.tenants:
            shape_slug = tenant.model or tenant.route[0]
            self._tenants[tenant.name] = _TenantState(
                slo=tenant,
                bucket=tenant.bucket(clock=clock),
                input_shape=self._input_shape(shape_slug))
        self._queue = WeightedFairQueue(
            {t.name: t for t in config.tenants})
        self._scheduler: Optional[threading.Thread] = None
        self._last_refresh = 0.0

    def _input_shape(self, slug: str) -> Tuple[int, int, int]:
        shape = self._specs[slug].input_shape
        return (shape.channels, shape.height, shape.width)

    @property
    def tenants(self) -> Tuple[str, ...]:
        """Tenant names, in config order (also the fleet duck-type tag
        :meth:`repro.serve.LoadGenerator.run_mix` dispatches on)."""
        return tuple(t.name for t in self.config.tenants)

    @property
    def models(self) -> Tuple[str, ...]:
        return tuple(m.slug for m in self.config.models)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "ModelFleet":
        with self._lock:
            if self._closed:
                raise ServerClosed("fleet already shut down")
            if self._started:
                return self
            self._started = True
            self._started_at = self._clock()
        for server in self._servers.values():
            server.start()
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="fleet-scheduler",
            daemon=True)
        self._scheduler.start()
        return self

    def shutdown(self, drain: bool = True) -> None:
        """Stop the fleet; every accepted request still completes.

        ``drain=True`` dispatches everything already fair-queued and
        lets the per-model servers drain; ``drain=False`` cancels
        queued requests with :class:`~repro.serve.ServerClosed`.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._stopped_at = self._clock()
        self._queue.close()
        if not drain:
            for tenant, item in self._queue.drain():
                self._fail(self._tenants[tenant], item.response,
                           ServerClosed("fleet shut down before dispatch"))
        if self._scheduler is not None:
            self._scheduler.join()
        for server in self._servers.values():
            server.shutdown(drain=drain)

    def __enter__(self) -> "ModelFleet":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- admission ---------------------------------------------------------

    def submit(self, tenant: str, x: np.ndarray,
               deadline_ms: Optional[float] = None) -> PendingResponse:
        """Enqueue one request for ``tenant``; returns its future.

        Raises :class:`~repro.serve.QuotaExceeded` when the tenant's
        token bucket is empty, :class:`~repro.serve.QueueFull` when
        its fair-queue lane is at depth, and
        :class:`~repro.serve.ServerClosed` when the fleet is not
        accepting work.  ``deadline_ms`` defaults to the tenant's SLO
        deadline and covers the whole fleet residence — fair queue
        plus server queue plus execution.
        """
        state = self._tenants.get(tenant)
        if state is None:
            raise KeyError(
                f"unknown tenant {tenant!r}; known: {list(self._tenants)}")
        if not self._started or self._closed:
            raise ServerClosed("fleet is not accepting work")
        if state.bucket is not None and not state.bucket.try_acquire():
            with state.lock:
                state.quota_rejected += 1
            obs.count("fleet.quota_rejected")
            raise QuotaExceeded(
                f"tenant {tenant!r} over quota "
                f"({state.slo.quota_rps:g} rps sustained)")
        x = np.asarray(x)
        if x.shape != state.input_shape:
            raise ValueError(
                f"tenant {tenant!r} input shape {x.shape} does not match "
                f"its models' {state.input_shape}")
        deadline_ms = (deadline_ms if deadline_ms is not None
                       else state.slo.deadline_ms)
        if deadline_ms <= 0:
            raise ValueError("deadline_ms must be positive")
        response = PendingResponse()
        item = _FleetItem(x, response,
                          deadline_at=self._clock() + deadline_ms / 1e3)
        try:
            admitted = self._queue.put(tenant, item)
        except RuntimeError:
            raise ServerClosed("fleet is not accepting work") from None
        if not admitted:
            with state.lock:
                state.shed += 1
            obs.count("fleet.queue_full")
            raise QueueFull(
                f"tenant {tenant!r} fair-queue lane is at depth "
                f"{state.slo.queue_depth}")
        with state.lock:
            state.accepted += 1
        obs.count("fleet.accepted")
        return response

    # -- scheduling --------------------------------------------------------

    def _scheduler_loop(self) -> None:
        while True:
            got = self._queue.get(timeout=0.05)
            self._maybe_refresh_router()
            if got is None:
                if self._queue.closed and self._queue.qsize() == 0:
                    return
                continue
            tenant, item = got
            self._dispatch(tenant, item)

    def _dispatch(self, tenant: str, item: _FleetItem) -> None:
        state = self._tenants[tenant]
        now = self._clock()
        remaining_ms = (item.deadline_at - now) * 1e3
        if remaining_ms <= 0:
            self._fail(state, item.response, DeadlineExceeded(
                f"tenant {tenant!r} request expired in the fair queue"))
            return
        router = self._tenant_router[tenant]
        if router is None:
            slug = state.slo.model
        else:
            slug = self._name_to_slug[router.route(tenant)]
        with state.lock:
            state.dispatched[slug] = state.dispatched.get(slug, 0) + 1
        try:
            inner = self._servers[slug].submit(
                item.x, deadline_ms=remaining_ms)
        except ServeError as error:
            self._fail(state, item.response, error)
            return
        outer = item.response

        def chain(done: PendingResponse, state=state, outer=outer) -> None:
            self._finish(state, outer, done)

        inner.on_done(chain)

    def _finish(self, state: _TenantState, outer: PendingResponse,
                inner: PendingResponse) -> None:
        error = inner.exception(timeout=0)
        if error is not None:
            self._fail(state, outer, error)
            return
        outer._complete(inner.result(timeout=0))
        with state.lock:
            state.completed += 1
            latency = outer.latency_s
            if latency is not None:
                state.latency.record(latency * _US)

    def _fail(self, state: _TenantState, outer: PendingResponse,
              error: BaseException) -> None:
        outer._fail(error)
        with state.lock:
            if isinstance(error, DeadlineExceeded):
                state.expired += 1
            else:
                state.failed += 1

    def _maybe_refresh_router(self) -> None:
        if not self._routers:
            return
        now = self._clock()
        if now - self._last_refresh < self.config.router.refresh_s:
            return
        self._last_refresh = now
        for router in self._routers.values():
            for variant in router.frontier:
                slug = self._name_to_slug[variant.model]
                router.observe(variant.model,
                               self._servers[slug].latency_histogram())
            router.refresh(now)

    # -- reporting ---------------------------------------------------------

    def stats(self) -> FleetStats:
        tenants: Dict[str, Dict[str, object]] = {}
        for name, state in self._tenants.items():
            with state.lock:
                summary = state.latency.summary()
                latency_ms = {key: summary[key] / 1e3 for key in
                              ("mean", "min", "max", "p50", "p95", "p99")}
                latency_ms["count"] = summary["count"]
                router = self._tenant_router[name]
                tenants[name] = {
                    "deadline_ms": state.slo.deadline_ms,
                    "current_model": (state.slo.model if router is None
                                      else self._name_to_slug[
                                          router.current(name)]),
                    "accepted": state.accepted,
                    "quota_rejected": state.quota_rejected,
                    "shed": state.shed,
                    "expired": state.expired,
                    "completed": state.completed,
                    "failed": state.failed,
                    "dispatched": dict(state.dispatched),
                    "latency_ms": latency_ms,
                }
        routing = {"+".join(group): router.stats()
                   for group, router in self._routers.items()}
        with self._lock:
            started = self._started_at
            end = (self._stopped_at if self._stopped_at is not None
                   else self._clock())
        elapsed = max(end - started, 1e-9) if started else 0.0
        for name, report in tenants.items():
            obs.gauge(f"fleet.{name}.p99_ms", report["latency_ms"]["p99"])
        return FleetStats(
            tenants=tenants,
            models={slug: server.stats()
                    for slug, server in self._servers.items()},
            routing=routing,
            elapsed_s=elapsed,
        )

    def sample_inputs(self, n: int = 8, seed: int = 0
                      ) -> Dict[str, np.ndarray]:
        """Per-tenant input batches of the right shape (for load gen)."""
        rng = np.random.default_rng(seed)
        return {
            name: rng.normal(size=(n, *state.input_shape))
            for name, state in self._tenants.items()
        }

    # -- co-design export --------------------------------------------------

    def export_workload(self) -> FleetWorkload:
        """Summarize observed traffic into the design tools' inputs.

        Each model's share is its fraction of dispatched requests; the
        deadline attached to it is the *tightest* SLO among the
        tenants that hit it, and the workload's overall
        ``latency_budget_ms`` is the fleet's binding (minimum)
        deadline.  Falls back to the configured tenant shares when no
        traffic has been dispatched yet, so the export is always
        well-formed.
        """
        dispatched: Dict[str, int] = {}
        deadline: Dict[str, float] = {}
        for state in self._tenants.values():
            with state.lock:
                counts = dict(state.dispatched)
            for slug, count in counts.items():
                dispatched[slug] = dispatched.get(slug, 0) + count
                deadline[slug] = min(
                    deadline.get(slug, float("inf")),
                    state.slo.deadline_ms)
        if not dispatched:
            for tenant in self.config.tenants:
                slug = tenant.model or tenant.route[0]
                dispatched[slug] = dispatched.get(slug, 0) + 1
                deadline[slug] = min(
                    deadline.get(slug, float("inf")), tenant.deadline_ms)
        total = sum(dispatched.values())
        entries = tuple(
            WorkloadEntry(
                model=slug,
                spec=self._specs[slug],
                share=count / total,
                deadline_ms=deadline[slug],
            )
            for slug, count in sorted(dispatched.items(),
                                      key=lambda kv: -kv[1]))
        return FleetWorkload(
            entries=entries,
            latency_budget_ms=min(t.deadline_ms
                                  for t in self.config.tenants),
            array_size=self.config.pacing.array_size,
            rf_entries=self.config.pacing.rf_entries,
            seed=self.config.seed,
        )
