"""Shared-memory primitives for the multi-process serving runtime.

Three pieces, all stdlib + numpy:

* **Segment helpers** — :func:`create_segment` / :func:`attach_segment`
  wrap :class:`multiprocessing.shared_memory.SharedMemory` with the
  ownership discipline the pool relies on: the parent creates every
  segment under the ``rsrv_`` prefix and is the only process that ever
  unlinks; workers attach *untracked* so a worker exiting (or dying)
  never tears a segment out from under its siblings.  The ``rsrv_``
  prefix is load-bearing: the leak tests and the CI post-step scan
  ``/dev/shm`` for it.
* **Array packing** — :func:`pack_arrays` lays a dict of numpy arrays
  into one segment (64-byte aligned) and returns a picklable manifest;
  :func:`map_arrays` rebuilds them as zero-copy views on the other
  side, read-only by default.  This is how a plan's fused weights are
  published once and mapped by every worker.
* **Ring buffers** — :class:`ShmRing`, a fixed-slot bounded ring over a
  segment: each slot is ``[length header | payload bytes]``, flow
  control is a classic items/spaces semaphore pair, and per-slot ready
  flags make it safe for multiple producers (the response ring is
  written by every worker).  Messages are raw bytes composed by the
  caller — request/response activations cross the boundary as memcpys
  into slots, never through pickle.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "ArraySpec",
    "RingHandle",
    "ShmRing",
    "attach_segment",
    "create_segment",
    "map_arrays",
    "pack_arrays",
    "shm_prefix",
]

#: Every segment the serving runtime creates starts with this; leak
#: checks (tests and CI) scan /dev/shm for it.
SHM_PREFIX = "rsrv_"

_ALIGN = 64


def shm_prefix() -> str:
    """The ``/dev/shm`` name prefix used by the serving runtime."""
    return SHM_PREFIX


def create_segment(name: str, size: int) -> shared_memory.SharedMemory:
    """Create an owned segment (parent side; pair with close+unlink)."""
    return shared_memory.SharedMemory(name=name, create=True,
                                      size=max(int(size), 1))


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without tracker registration.

    ``resource_tracker`` would otherwise register the segment again in
    the attaching process and unlink it when that process exits — which
    destroys a segment the parent and sibling workers still use (fixed
    upstream by ``track=False`` in 3.13).  The creator owns unlinking;
    attachers must not.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        # Suppress registration instead of unregistering afterwards:
        # the tracker keys by name, so an unregister here would cancel
        # the *creator's* registration too.
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


def destroy_segment(segment: Optional[shared_memory.SharedMemory],
                    unlink: bool) -> None:
    """Best-effort close (and unlink, for the owner) of a segment."""
    if segment is None:
        return
    try:
        segment.close()
    except BufferError:
        # A numpy view still references the mapping; the file still
        # gets unlinked below, and the mapping dies with the process.
        pass
    except Exception:
        pass
    if unlink:
        try:
            segment.unlink()
        except Exception:
            pass


# -- array packing -----------------------------------------------------------


@dataclass(frozen=True)
class ArraySpec:
    """Where one array lives inside a packed segment (picklable)."""

    key: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def pack_arrays(name: str, arrays: Mapping[str, np.ndarray]
                ) -> Tuple[shared_memory.SharedMemory, List[ArraySpec]]:
    """Copy arrays into one new segment; returns (segment, manifest).

    Each array is copied exactly once — the publication copy.  Workers
    then :func:`map_arrays` the manifest for zero-copy views.
    """
    manifest: List[ArraySpec] = []
    offset = 0
    items = list(arrays.items())
    for key, array in items:
        offset = _aligned(offset)
        manifest.append(ArraySpec(key, offset, tuple(array.shape),
                                  array.dtype.str))
        offset += array.nbytes
    segment = create_segment(name, offset)
    for spec, (_, array) in zip(manifest, items):
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=segment.buf, offset=spec.offset)
        view[...] = array
        del view
    return segment, manifest


def map_arrays(segment: shared_memory.SharedMemory,
               manifest: Sequence[ArraySpec],
               writeable: bool = False) -> Dict[str, np.ndarray]:
    """Zero-copy views of a packed segment, read-only unless asked."""
    out: Dict[str, np.ndarray] = {}
    for spec in manifest:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=segment.buf, offset=spec.offset)
        if not writeable:
            view.flags.writeable = False
        out[spec.key] = view
    return out


# -- ring buffer -------------------------------------------------------------


@dataclass
class RingHandle:
    """Everything a process needs to open a ring (Process-args picklable).

    The semaphores and locks are multiprocessing primitives: they cross
    to workers through ``Process`` args (fork or spawn), never through a
    plain pickle.
    """

    name: str
    slots: int
    slot_bytes: int
    items: object       # mp.Semaphore: filled slots
    spaces: object      # mp.Semaphore: free slots
    head_lock: object   # mp.Lock: consumer index
    tail_lock: object   # mp.Lock: producer index
    #: Advisory dtype of the activation payload carried in each slot
    #: ("<f8" float64, "<i2" int16, "<i1" int8 ...).  The ring itself is
    #: byte-level; producers and consumers agree on the layout through
    #: this field instead of hardcoding float64.
    payload_dtype: str = "<f8"


class ShmRing:
    """Bounded multi-producer ring of byte messages over shared memory.

    Layout: ``[head, tail] int64 | ready flags int64 x slots |
    slots x (int64 length | slot_bytes payload)``.  Producers acquire
    ``spaces``, claim the next tail slot under ``tail_lock``, memcpy the
    message, set the slot's ready flag, release ``items``.  The single
    consumer per ``get`` call acquires ``items``, takes the head slot
    under ``head_lock``, spins briefly if that slot's producer has not
    finished yet (possible when producers complete out of order), copies
    the message out, clears the flag and releases ``spaces``.

    ``put``/``get`` take a timeout plus an optional ``abort`` callable
    so shutdown never deadlocks on a full/empty ring.
    """

    def __init__(self, ctx, slots: int, slot_bytes: int, name: str,
                 create: bool, handle: Optional[RingHandle] = None) -> None:
        if handle is None:
            handle = RingHandle(name=name, slots=slots,
                                slot_bytes=int(slot_bytes),
                                items=ctx.Semaphore(0),
                                spaces=ctx.Semaphore(slots),
                                head_lock=ctx.Lock(),
                                tail_lock=ctx.Lock())
        self.handle = handle
        self._owner = create
        header = 16 + 8 * handle.slots
        self._slot_stride = 8 + handle.slot_bytes
        total = header + handle.slots * self._slot_stride
        if create:
            self._segment = create_segment(handle.name, total)
        else:
            self._segment = attach_segment(handle.name)
        self._ctrl = np.ndarray((2,), dtype=np.int64,
                                buffer=self._segment.buf)
        self._flags = np.ndarray((handle.slots,), dtype=np.int64,
                                 buffer=self._segment.buf, offset=16)
        self._data_off = header
        if create:
            self._ctrl[:] = 0
            self._flags[:] = 0

    @classmethod
    def create(cls, ctx, slots: int, slot_bytes: int, name: str) -> "ShmRing":
        return cls(ctx, slots, slot_bytes, name, create=True)

    @classmethod
    def attach(cls, handle: RingHandle) -> "ShmRing":
        return cls(None, handle.slots, handle.slot_bytes, handle.name,
                   create=False, handle=handle)

    # -- internals ---------------------------------------------------------

    def _slot(self, index: int) -> memoryview:
        start = self._data_off + index * self._slot_stride
        return self._segment.buf[start:start + self._slot_stride]

    @staticmethod
    def _acquire(semaphore, timeout: Optional[float],
                 abort: Optional[Callable[[], bool]]) -> bool:
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            slice_s = 0.1
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                slice_s = min(slice_s, remaining)
            if semaphore.acquire(timeout=slice_s):
                return True
            if abort is not None and abort():
                return False

    # -- API ---------------------------------------------------------------

    def put(self, chunks: Sequence[object], timeout: Optional[float] = None,
            abort: Optional[Callable[[], bool]] = None) -> bool:
        """Write one message (concatenated chunks); False on timeout/abort.

        Chunks are anything exposing a contiguous buffer — bytes or
        C-contiguous numpy arrays — copied straight into the slot.
        """
        views = [memoryview(chunk).cast("B") for chunk in chunks]
        length = sum(v.nbytes for v in views)
        if length > self.handle.slot_bytes:
            raise ValueError(f"message of {length} bytes exceeds slot size "
                             f"{self.handle.slot_bytes}")
        if not self._acquire(self.handle.spaces, timeout, abort):
            return False
        with self.handle.tail_lock:
            index = int(self._ctrl[1]) % self.handle.slots
            self._ctrl[1] += 1
        slot = self._slot(index)
        slot[:8] = int(length).to_bytes(8, "little")
        offset = 8
        for view in views:
            slot[offset:offset + view.nbytes] = view
            offset += view.nbytes
        self._flags[index] = 1
        self.handle.items.release()
        return True

    def get(self, timeout: Optional[float] = None,
            abort: Optional[Callable[[], bool]] = None) -> Optional[bytes]:
        """Pop one message as bytes; None on timeout/abort.

        A slot whose producer died mid-copy (ready flag never set) is
        skipped after a bounded spin rather than wedging the ring; the
        caller sees a ``None`` as if the ring were empty.
        """
        if not self._acquire(self.handle.items, timeout, abort):
            return None
        with self.handle.head_lock:
            index = int(self._ctrl[0]) % self.handle.slots
            # An out-of-order producer may still be copying into the
            # head slot; its flag flips the instant it finishes.
            poisoned_at = time.monotonic() + 1.0
            while not self._flags[index]:
                if time.monotonic() >= poisoned_at:
                    self._flags[index] = 0
                    self._ctrl[0] += 1
                    self.handle.spaces.release()
                    return None
                time.sleep(1e-5)
            slot = self._slot(index)
            length = int.from_bytes(slot[:8], "little")
            message = bytes(slot[8:8 + length])
            self._flags[index] = 0
            self._ctrl[0] += 1
        self.handle.spaces.release()
        return message

    def close(self) -> None:
        """Drop the mapping (and the file, when this side created it)."""
        # Views into the buffer must go before the segment can unmap.
        self._ctrl = None
        self._flags = None
        destroy_segment(self._segment, unlink=self._owner)
        self._segment = None
