"""Module and parameter primitives of the numpy NN framework.

A :class:`Module` owns :class:`Parameter` objects and implements
``forward``/``backward``.  Backward takes the upstream gradient and
returns the gradient with respect to the module's input, accumulating
parameter gradients in place — the same contract as classic
define-by-run frameworks, minus autograd (each module knows its own
adjoint, which keeps the framework small and auditable).
"""

from __future__ import annotations

import contextlib
import threading
from typing import Dict, Iterator, List, Optional

import numpy as np


class _GradState(threading.local):
    """Per-thread gradient switch, toggled by :func:`no_grad`.

    Thread-local (not process-wide) so a serving worker running an
    inference plan under ``no_grad`` cannot flip gradient caching off —
    or, worse, back *on* mid-forward — for a training loop in another
    thread.  Each thread starts with gradients enabled.
    """

    enabled = True


_GRAD_STATE = _GradState()


def is_grad_enabled() -> bool:
    """Whether modules should record state for a later backward pass
    (on the calling thread)."""
    return _GRAD_STATE.enabled


@contextlib.contextmanager
def no_grad():
    """Context manager that disables backward-state caching.

    Inside the context every module runs forward-only: convolution
    im2col matrices, ReLU masks, pooling argmax indices and batch-norm
    normalized activations are not retained, which is the inference
    fast path's memory win.  Calling ``backward`` on a module whose
    forward ran under ``no_grad`` raises ``RuntimeError``.  The switch
    is per-thread: entering ``no_grad`` on one thread leaves concurrent
    training threads untouched.
    """
    previous = _GRAD_STATE.enabled
    _GRAD_STATE.enabled = False
    try:
        yield
    finally:
        _GRAD_STATE.enabled = previous


class Parameter:
    """A learnable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray, name: str = "") -> None:
        self.value = np.asarray(value, dtype=np.float64)
        self.grad = np.zeros_like(self.value)
        self.name = name

    @property
    def shape(self):
        return self.value.shape

    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter({self.name!r}, shape={self.value.shape})"


class Module:
    """Base class: a differentiable tensor-to-tensor transform."""

    def __init__(self) -> None:
        self._parameters: List[Parameter] = []
        self.training = True

    # -- plumbing ----------------------------------------------------------

    def register(self, value: np.ndarray, name: str) -> Parameter:
        """Create and track a parameter."""
        param = Parameter(value, name=name)
        self._parameters.append(param)
        return param

    def parameters(self) -> Iterator[Parameter]:
        """All learnable parameters of this module."""
        return iter(self._parameters)

    def num_parameters(self) -> int:
        return sum(p.value.size for p in self._parameters)

    def zero_grad(self) -> None:
        for param in self._parameters:
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    @property
    def needs_grad(self) -> bool:
        """True when forward must cache state for backward.

        Inference skips the caches two ways: module-local ``eval()``
        and the global :func:`no_grad` context.
        """
        return self.training and is_grad_enabled()

    # -- compute -----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Gradient w.r.t. input; accumulates parameter gradients."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- (de)serialization ---------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Parameter values keyed by their registered names."""
        state: Dict[str, np.ndarray] = {}
        for param in self._parameters:
            if param.name in state:
                raise ValueError(f"duplicate parameter name {param.name!r}")
            state[param.name] = param.value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameter values saved by :meth:`state_dict`."""
        for param in self._parameters:
            if param.name not in state:
                raise KeyError(f"missing parameter {param.name!r}")
            value = np.asarray(state[param.name], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(
                    f"shape mismatch for {param.name!r}: "
                    f"{value.shape} vs {param.value.shape}"
                )
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)


class Identity(Module):
    """Pass-through module (used for 'identity' activations)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        return grad_out


def init_rng(seed: Optional[int]) -> np.random.Generator:
    """Construct the framework's RNG (explicit seeding everywhere)."""
    return np.random.default_rng(seed)
