"""Lower a :class:`~repro.graph.NetworkSpec` to runnable numpy modules.

:class:`GraphNetwork` walks the spec's DAG, instantiates one module per
node (plus fused activations for Conv2D/Dense specs), and implements
forward and backward over the DAG — gradients accumulate at fan-out
points, and Concat/Add nodes split gradients back to their producers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro import obs
from repro.graph import layer_spec as spec
from repro.graph.network_spec import LayerNode, NetworkSpec
from repro.nn import layers
from repro.nn.infer import (
    ArenaRegistry,
    BufferArena,
    add_tensors,
    concat_channels,
    liveness_release_schedule,
    release_dead,
)
from repro.nn.module import Identity, Module, Parameter


def _activation_module(kind: str) -> Module:
    if kind == "relu":
        return layers.ReLU()
    if kind == "identity":
        return Identity()
    raise ValueError(f"unsupported activation {kind!r}")


class _Node:
    """Runtime node: a module (or structural op) plus graph wiring."""

    def __init__(self, node: LayerNode, module: Optional[Module],
                 activation: Optional[Module]) -> None:
        self.name = node.name
        self.spec = node.spec
        self.inputs = node.inputs
        self.module = module
        self.activation = activation


class GraphNetwork(Module):
    """Executable numpy network built from a layer-graph spec."""

    def __init__(self, network: NetworkSpec,
                 rng: Optional[np.random.Generator] = None,
                 batch_norm: bool = False) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.spec = network
        self.batch_norm = batch_norm
        self._nodes: List[_Node] = []
        self._bn: Dict[str, layers.BatchNorm2D] = {}
        for node in network.nodes:
            self._nodes.append(self._lower(node, rng))
        self._activations: Dict[str, np.ndarray] = {}
        # Memory planner state for eval-mode forward: per-step release
        # lists from graph liveness, plus the buffer-recycling arenas.
        # Arenas are unlocked, so the registry hands each thread its
        # own replica — eval-mode forward is reentrant across threads.
        self._input_names = {n.name for n in self._nodes
                             if isinstance(n.spec, spec.Input)}
        self._release_after = liveness_release_schedule(
            self._nodes, self._input_names)
        self._arenas = ArenaRegistry()

    # -- lowering ------------------------------------------------------------

    def _lower(self, node: LayerNode, rng: np.random.Generator) -> _Node:
        s = node.spec
        module: Optional[Module] = None
        activation: Optional[Module] = None
        if isinstance(s, spec.Conv2D):
            module = layers.Conv2D(
                s.in_channels, s.out_channels, s.kernel_size,
                stride=s.stride, padding=s.padding, groups=s.groups,
                bias=s.bias, rng=rng, name=node.name,
            )
            activation = _activation_module(s.activation)
            if self.batch_norm:
                bn = layers.BatchNorm2D(s.out_channels, name=f"{node.name}.bn")
                self._bn[node.name] = bn
        elif isinstance(s, spec.Dense):
            module = layers.Dense(s.in_features, s.out_features,
                                  bias=s.bias, rng=rng, name=node.name)
            activation = _activation_module(s.activation)
        elif isinstance(s, spec.Pool2D):
            cls = layers.MaxPool2D if s.mode == "max" else layers.AvgPool2D
            module = cls(s.kernel_size, s.stride, s.padding)
        elif isinstance(s, spec.GlobalAvgPool):
            module = layers.GlobalAvgPool()
        elif isinstance(s, spec.Flatten):
            module = layers.Flatten()
        elif isinstance(s, spec.Upsample):
            module = layers.Upsample(scale=s.scale)
        elif isinstance(s, spec.Activation):
            module = _activation_module(s.kind)
        elif isinstance(s, spec.Softmax):
            module = layers.Softmax()
        elif isinstance(s, (spec.Input, spec.Concat, spec.Add)):
            module = None  # structural; handled inline
        else:
            raise TypeError(f"cannot lower spec {type(s).__name__}")
        return _Node(node, module, activation)

    # -- parameters ----------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        for node in self._nodes:
            for owner in (node.module, node.activation):
                if owner is not None:
                    yield from owner.parameters()
        for bn in self._bn.values():
            yield from bn.parameters()

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.value.size for p in self.parameters())

    def train(self, mode: bool = True) -> "GraphNetwork":
        super().train(mode)
        for node in self._nodes:
            for owner in (node.module, node.activation):
                if owner is not None:
                    owner.train(mode)
        for bn in self._bn.values():
            bn.train(mode)
        return self

    def state_dict(self) -> Dict[str, np.ndarray]:
        state: Dict[str, np.ndarray] = {}
        for param in self.parameters():
            if param.name in state:
                raise ValueError(f"duplicate parameter name {param.name!r}")
            state[param.name] = param.value.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for param in self.parameters():
            if param.name not in state:
                raise KeyError(f"missing parameter {param.name!r}")
            value = np.asarray(state[param.name], dtype=np.float64)
            if value.shape != param.value.shape:
                raise ValueError(f"shape mismatch for {param.name!r}")
            param.value = value.copy()
            param.grad = np.zeros_like(param.value)

    # -- execution ------------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network on a batch ``(N, C, H, W)``.

        Training mode retains every node's activation (backward needs
        them).  Eval mode runs the liveness-driven memory planner
        instead: each activation is dropped at its last use and
        exclusively-owned buffers are recycled through the arena, so
        peak memory tracks the widest graph cut rather than the whole
        network.
        """
        if x.ndim != 4:
            raise ValueError(f"expected NCHW input, got shape {x.shape}")
        expected = self.spec.input_shape
        if x.shape[1:] != (expected.channels, expected.height, expected.width):
            raise ValueError(
                f"input shape {x.shape[1:]} does not match network input "
                f"{expected}")
        training = self.training
        arena = None if training else self._arena
        values: Dict[str, np.ndarray] = {}
        release_arena = arena
        with obs.span("nn.forward", network=self.spec.name,
                      batch=int(x.shape[0]), training=training):
            for i, node in enumerate(self._nodes):
                with obs.span("nn.node", node=node.name):
                    if isinstance(node.spec, spec.Input):
                        values[node.name] = x
                    elif isinstance(node.spec, spec.Concat):
                        values[node.name] = concat_channels(
                            [values[n] for n in node.inputs], arena)
                    elif isinstance(node.spec, spec.Add):
                        values[node.name] = add_tensors(
                            [values[n] for n in node.inputs], arena)
                    else:
                        out = node.module(values[node.inputs[0]])
                        if node.name in self._bn:
                            out = self._bn[node.name](out)
                        if node.activation is not None:
                            out = node.activation(out)
                        values[node.name] = out
                    if not training:
                        release_dead(values, self._release_after[i],
                                     release_arena)
        if training:
            self._activations = values
        elif self._activations:
            # Free retained training activations, but never clobber a
            # concurrent thread's state: eval forwards only ever write
            # the (idempotent) empty dict.
            self._activations = {}
        return values[self._nodes[-1].name]

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Backpropagate through the DAG; returns the input gradient."""
        if not self._activations:
            raise RuntimeError("backward called before forward")
        grads: Dict[str, np.ndarray] = {self._nodes[-1].name: grad_out}

        def accumulate(name: str, grad: np.ndarray) -> None:
            if name in grads:
                grads[name] = grads[name] + grad
            else:
                grads[name] = grad

        input_grad: Optional[np.ndarray] = None
        for node in reversed(self._nodes):
            grad = grads.get(node.name)
            if grad is None:
                continue  # dead branch (no consumer contributed gradient)
            if isinstance(node.spec, spec.Input):
                input_grad = grad
            elif isinstance(node.spec, spec.Concat):
                offset = 0
                for n in node.inputs:
                    width = self._activations[n].shape[1]
                    accumulate(n, grad[:, offset:offset + width])
                    offset += width
            elif isinstance(node.spec, spec.Add):
                for n in node.inputs:
                    accumulate(n, grad)
            else:
                if node.activation is not None:
                    grad = node.activation.backward(grad)
                if node.name in self._bn:
                    grad = self._bn[node.name].backward(grad)
                accumulate(node.inputs[0], node.module.backward(grad))
        if input_grad is None:
            raise RuntimeError("gradient never reached the input node")
        return input_grad

    @property
    def _arena(self) -> BufferArena:
        """The calling thread's eval-forward arena replica."""
        return self._arenas.get()

    def arena_stats(self) -> Dict[str, int]:
        """Aggregated hit/miss/release counters across every thread's
        arena replica (see :class:`~repro.nn.infer.ArenaRegistry`)."""
        return self._arenas.stats()

    def inference_plan(self, arena: Optional[BufferArena] = None):
        """Compile the fused eval execution plan for this network.

        Folds conv+BatchNorm+ReLU chains into single kernels and runs
        them through the arena-backed memory planner (see
        :mod:`repro.nn.infer`).  The plan snapshots current parameter
        values — rebuild it after any weight mutation (training,
        quantization, ``load_state_dict``).  The returned plan is
        single-threaded (it inherits the calling thread's arena);
        concurrent executors take :meth:`InferencePlan.clone` replicas.
        """
        from repro.nn.infer import build_inference_plan
        return build_inference_plan(self, arena=arena or self._arena)

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class predictions (argmax over the final output)."""
        out = self.forward(x)
        return np.argmax(out, axis=-1)
