"""Layer modules: convolution, dense, pooling, normalization, activation.

Every module mirrors one :mod:`repro.graph` layer spec, so a whole
:class:`~repro.graph.NetworkSpec` can be lowered to runnable numpy code
by :class:`repro.nn.network.GraphNetwork`.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.nn.functional import (
    col2im,
    conv_output_plane,
    im2col,
    sliding_windows,
    softmax,
)
from repro.nn.module import Module


def he_init(rng: np.random.Generator, shape: Tuple[int, ...],
            fan_in: int) -> np.ndarray:
    """He-normal initialization (appropriate for ReLU networks)."""
    if fan_in <= 0:
        raise ValueError("fan_in must be positive")
    return rng.normal(0.0, np.sqrt(2.0 / fan_in), size=shape)


class Conv2D(Module):
    """Grouped 2-D convolution via im2col GEMM.

    Covers every convolution in the model zoo: pointwise (1x1), spatial
    (FxF, including SqueezeNext's 3x1/1x3 separable pair) and depthwise
    (``groups == in_channels``).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: Tuple[int, int],
        stride: Tuple[int, int] = (1, 1),
        padding: Tuple[int, int] = (0, 0),
        groups: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        name: str = "conv",
    ) -> None:
        super().__init__()
        if in_channels % groups or out_channels % groups:
            raise ValueError("groups must divide both channel counts")
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        kh, kw = kernel_size
        cin_g = in_channels // groups
        fan_in = cin_g * kh * kw
        self.weight = self.register(
            he_init(rng, (out_channels, cin_g, kh, kw), fan_in),
            f"{name}.weight",
        )
        self.bias = (self.register(np.zeros(out_channels), f"{name}.bias")
                     if bias else None)
        self._cache = None

    @property
    def is_depthwise(self) -> bool:
        """One input channel per group (``groups == in_channels``)."""
        return self.groups == self.in_channels

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        g = self.groups
        cin_g = self.in_channels // g
        cout_g = self.out_channels // g
        kh, kw = self.kernel_size
        out_h, out_w = conv_output_plane(h, w, self.kernel_size,
                                         self.stride, self.padding)
        if self.is_depthwise and g > 1 and not self.needs_grad:
            # Depthwise fast path: reduce directly over a strided window
            # view — no im2col matrix is ever materialized.
            windows = sliding_windows(x, self.kernel_size, self.stride,
                                      self.padding)
            wdw = self.weight.value.reshape(g, cout_g, kh, kw)
            out = np.einsum("ncijpq,cmij->ncmpq", windows, wdw)
            out = out.reshape(n, self.out_channels, out_h, out_w)
            self._cache = None
        else:
            # One im2col over the full tensor, one batched GEMM over all
            # groups: cols (N, g, cin_g*kh*kw, P) x weights
            # (g, cout_g, cin_g*kh*kw) -> (N, g, cout_g, P).
            cols = im2col(x, self.kernel_size, self.stride, self.padding)
            cols = cols.reshape(n, g, cin_g * kh * kw, out_h * out_w)
            wmat = self.weight.value.reshape(g, cout_g, cin_g * kh * kw)
            out = np.matmul(wmat[None], cols)
            out = out.reshape(n, self.out_channels, out_h, out_w)
            self._cache = (x.shape, cols) if self.needs_grad else None
        if self.bias is not None:
            out += self.bias.value.reshape(1, -1, 1, 1)
        return out

    def forward_reference(self, x: np.ndarray) -> np.ndarray:
        """Per-group looped convolution (the pre-vectorization path).

        Kept as the auditable reference implementation: equivalence
        tests pin the batched kernels against it, and the throughput
        benchmark measures the speedup over it.  Forward-only — it
        caches nothing.
        """
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        g = self.groups
        cin_g = self.in_channels // g
        cout_g = self.out_channels // g
        kh, kw = self.kernel_size
        out_h, out_w = conv_output_plane(h, w, self.kernel_size,
                                         self.stride, self.padding)
        out = np.empty((n, self.out_channels, out_h, out_w), dtype=np.float64)
        for gi in range(g):
            xg = x[:, gi * cin_g:(gi + 1) * cin_g]
            cols = im2col(xg, self.kernel_size, self.stride, self.padding)
            wmat = self.weight.value[gi * cout_g:(gi + 1) * cout_g]
            wmat = wmat.reshape(cout_g, cin_g * kh * kw)
            out[:, gi * cout_g:(gi + 1) * cout_g] = (
                np.einsum("kp,npq->nkq", wmat, cols)
                .reshape(n, cout_g, out_h, out_w)
            )
        if self.bias is not None:
            out += self.bias.value.reshape(1, -1, 1, 1)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, cols = self._cache
        n = x_shape[0]
        g = self.groups
        cin_g = self.in_channels // g
        cout_g = self.out_channels // g
        kh, kw = self.kernel_size
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=(0, 2, 3))
        go = grad_out.reshape(n, g, cout_g, -1)
        # dW = sum_n go @ cols^T, batched over groups.
        dw = np.matmul(go, cols.swapaxes(-1, -2)).sum(axis=0)
        self.weight.grad += dw.reshape(self.out_channels, cin_g, kh, kw)
        wmat = self.weight.value.reshape(g, cout_g, cin_g * kh * kw)
        dcols = np.matmul(wmat.swapaxes(-1, -2)[None], go)
        return col2im(
            dcols.reshape(n, self.in_channels * kh * kw, -1), x_shape,
            self.kernel_size, self.stride, self.padding,
        )


class Dense(Module):
    """Fully-connected layer on flattened inputs ``(N, in_features)``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
        name: str = "dense",
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = self.register(
            he_init(rng, (out_features, in_features), in_features),
            f"{name}.weight",
        )
        self.bias = (self.register(np.zeros(out_features), f"{name}.bias")
                     if bias else None)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        flat = x.reshape(x.shape[0], -1)
        if flat.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} features, got {flat.shape[1]}")
        self._cache = (x.shape, flat) if self.needs_grad else None
        out = flat @ self.weight.value.T
        if self.bias is not None:
            out += self.bias.value
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, flat = self._cache
        self.weight.grad += grad_out.T @ flat
        if self.bias is not None:
            self.bias.grad += grad_out.sum(axis=0)
        return (grad_out @ self.weight.value).reshape(x_shape)


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.needs_grad:
            self._mask = None
            return np.maximum(x, 0.0)
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return np.where(self._mask, grad_out, 0.0)


class MaxPool2D(Module):
    """Max pooling with window/stride/padding."""

    def __init__(self, kernel_size: Tuple[int, int],
                 stride: Tuple[int, int], padding: Tuple[int, int] = (0, 0)) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        # Pad with -inf, not zero: a zero pad would win the max over a
        # window of negative activations and silently clip the output.
        cols = im2col(
            x.reshape(n * c, 1, h, w), self.kernel_size, self.stride,
            self.padding, pad_value=-np.inf,
        )
        # cols: (N*C, kh*kw, out_pixels)
        arg = cols.argmax(axis=1)
        out_h, out_w = conv_output_plane(h, w, self.kernel_size,
                                         self.stride, self.padding)
        out = np.take_along_axis(cols, arg[:, None, :], axis=1)[:, 0, :]
        self._cache = (x.shape, arg) if self.needs_grad else None
        return out.reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_shape, arg = self._cache
        n, c, h, w = x_shape
        kh, kw = self.kernel_size
        go = grad_out.reshape(n * c, 1, -1)
        dcols = np.zeros((n * c, kh * kw, go.shape[2]), dtype=grad_out.dtype)
        np.put_along_axis(dcols, arg[:, None, :], go, axis=1)
        grad = col2im(dcols, (n * c, 1, h, w), self.kernel_size,
                      self.stride, self.padding)
        return grad.reshape(x_shape)


class AvgPool2D(Module):
    """Average pooling with window/stride/padding."""

    def __init__(self, kernel_size: Tuple[int, int],
                 stride: Tuple[int, int], padding: Tuple[int, int] = (0, 0)) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        cols = im2col(x.reshape(n * c, 1, h, w), self.kernel_size,
                      self.stride, self.padding)
        out_h, out_w = conv_output_plane(h, w, self.kernel_size,
                                         self.stride, self.padding)
        self._input_shape = x.shape if self.needs_grad else None
        return cols.mean(axis=1).reshape(n, c, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        kh, kw = self.kernel_size
        go = grad_out.reshape(n * c, 1, -1) / (kh * kw)
        dcols = np.broadcast_to(go, (n * c, kh * kw, go.shape[2]))
        grad = col2im(np.ascontiguousarray(dcols), (n * c, 1, h, w),
                      self.kernel_size, self.stride, self.padding)
        return grad.reshape(self._input_shape)


class GlobalAvgPool(Module):
    """Average over the spatial plane, producing ``(N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape if self.needs_grad else None
        return x.mean(axis=(2, 3))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        n, c, h, w = self._input_shape
        grad = grad_out.reshape(n, c, 1, 1) / (h * w)
        return np.broadcast_to(grad, self._input_shape).copy()


class Flatten(Module):
    """Collapse CHW into a feature vector."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape if self.needs_grad else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_out.reshape(self._input_shape)


class BatchNorm2D(Module):
    """Batch normalization over the channel dimension of NCHW tensors."""

    def __init__(self, channels: int, momentum: float = 0.1,
                 eps: float = 1e-5, name: str = "bn") -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = self.register(np.ones(channels), f"{name}.gamma")
        self.beta = self.register(np.zeros(channels), f"{name}.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = ((1 - self.momentum) * self.running_mean
                                 + self.momentum * mean)
            self.running_var = ((1 - self.momentum) * self.running_var
                                + self.momentum * var)
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(1, -1, 1, 1)) / std.reshape(1, -1, 1, 1)
        self._cache = (x_hat, std) if self.needs_grad else None
        return (self.gamma.value.reshape(1, -1, 1, 1) * x_hat
                + self.beta.value.reshape(1, -1, 1, 1))

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, std = self._cache
        n, c, h, w = grad_out.shape
        m = n * h * w
        self.gamma.grad += (grad_out * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_out.sum(axis=(0, 2, 3))
        gamma = self.gamma.value.reshape(1, -1, 1, 1)
        dxhat = grad_out * gamma
        # Standard batch-norm backward (training-mode statistics).
        term1 = dxhat
        term2 = dxhat.mean(axis=(0, 2, 3), keepdims=True)
        term3 = x_hat * (dxhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
        return (term1 - term2 - term3) / std.reshape(1, -1, 1, 1)


class Dropout(Module):
    """Inverted dropout (AlexNet's regularizer): active only in training."""

    def __init__(self, p: float = 0.5,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError("drop probability must be in [0, 1)")
        self.p = p
        self._rng = rng or np.random.default_rng(0)
        self._mask = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep) / keep
        self._mask = mask if self.needs_grad else None
        return x * mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_out
        return grad_out * self._mask


class Upsample(Module):
    """Nearest-neighbour upsampling by an integer scale factor."""

    def __init__(self, scale: int = 2) -> None:
        super().__init__()
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.scale = scale

    def forward(self, x: np.ndarray) -> np.ndarray:
        s = self.scale
        return x.repeat(s, axis=2).repeat(s, axis=3)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        s = self.scale
        n, c, h, w = grad_out.shape
        view = grad_out.reshape(n, c, h // s, s, w // s, s)
        return view.sum(axis=(3, 5))


class Softmax(Module):
    """Softmax over the class dimension of ``(N, K)`` logits."""

    def __init__(self) -> None:
        super().__init__()
        self._out = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = softmax(x, axis=-1)
        self._out = out if self.needs_grad else None
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward called before forward")
        s = self._out
        dot = (grad_out * s).sum(axis=-1, keepdims=True)
        return s * (grad_out - dot)
