"""Optimizers and learning-rate schedules."""

from __future__ import annotations

from typing import Iterable, List

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
        max_grad_norm: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        if max_grad_norm < 0:
            raise ValueError("max_grad_norm must be non-negative")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.max_grad_norm = max_grad_norm
        self._velocity = [np.zeros_like(p.value) for p in self.parameters]

    def _grad_scale(self) -> float:
        """Global-norm clipping factor (1.0 when clipping is off)."""
        if not self.max_grad_norm:
            return 1.0
        total = np.sqrt(sum(float((p.grad ** 2).sum())
                            for p in self.parameters))
        if total <= self.max_grad_norm:
            return 1.0
        return self.max_grad_norm / total

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        scale = self._grad_scale()
        for param, velocity in zip(self.parameters, self._velocity):
            grad = param.grad * scale
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            velocity *= self.momentum
            velocity -= self.lr * grad
            param.value += velocity

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class Adam:
    """Adam optimizer (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        if weight_decay < 0:
            raise ValueError("weight decay must be non-negative")
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.beta1, self.beta2 = beta1, beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.value) for p in self.parameters]
        self._v = [np.zeros_like(p.value) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        self._t += 1
        bias1 = 1 - self.beta1 ** self._t
        bias2 = 1 - self.beta2 ** self._t
        for param, m, v in zip(self.parameters, self._m, self._v):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad ** 2
            m_hat = m / bias1
            v_hat = v / bias2
            param.value -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: SGD, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        if not 0 < gamma <= 1:
            raise ValueError("gamma must be in (0, 1]")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the (possibly updated) LR."""
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from the initial LR to ``min_lr``."""

    def __init__(self, optimizer: SGD, total_epochs: int,
                 min_lr: float = 0.0) -> None:
        if total_epochs <= 0:
            raise ValueError("total_epochs must be positive")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._epoch = 0

    def step(self) -> float:
        """Advance one epoch; returns the updated LR."""
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        self.optimizer.lr = (
            self.min_lr + (self.base_lr - self.min_lr)
            * 0.5 * (1 + np.cos(np.pi * progress))
        )
        return self.optimizer.lr
