"""Bit-level emulation of the accelerator's integer datapath.

The Squeezelerator PE is "a 16-bit integer multiplier [and] an adder
for accumulating the multiplication result" (Figure 2).  The
quantization module (:mod:`repro.nn.quant`) models the *rounding* cost
of that datapath; this module emulates the *arithmetic* itself: weights
and activations are converted to integers, products and accumulations
happen in exact integer arithmetic, and the accumulator width is
checked — so saturation risk (the real failure mode of narrow
accumulators) is measured rather than assumed away.

Linear layers are exactly scale-factorable, so the integer path's
dequantized output differs from emulating on-device arithmetic only in
ways the report quantifies (quantization error, accumulator range).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.graph import layer_spec as spec
from repro.nn.module import no_grad
from repro.nn.network import GraphNetwork
from repro.nn.quant import symmetric_quantize


@dataclass
class DatapathReport:
    """What the integer emulation observed."""

    weight_bits: int
    activation_bits: int
    accumulator_bits: int
    max_accumulator_bits_used: int = 0
    saturated_layers: List[str] = field(default_factory=list)
    per_layer_acc_bits: Dict[str, int] = field(default_factory=dict)

    @property
    def would_saturate(self) -> bool:
        return bool(self.saturated_layers)


def _quantize(x: np.ndarray, bits: int) -> Tuple[np.ndarray, float]:
    """Symmetric quantization to signed integers; returns (q, scale).

    Delegates to :func:`repro.nn.quant.symmetric_quantize` — one shared
    convention (all-zero tensor -> zeros with scale 1.0) for both the
    fake-quantization path and this integer emulation.
    """
    return symmetric_quantize(x, bits)


def _bits_needed(value: int) -> int:
    """Signed bits needed to hold ``value`` exactly."""
    if value == 0:
        return 1
    return int(value).bit_length() + 1


def emulate_fixed_point(
    network: GraphNetwork,
    x: np.ndarray,
    weight_bits: int = 16,
    activation_bits: int = 16,
    accumulator_bits: int = 32,
) -> Tuple[np.ndarray, DatapathReport]:
    """Run inference through the integer datapath emulation.

    Activations are re-quantized at every layer boundary (the global
    buffer stores 16-bit values), convolutions/FCs run in exact integer
    arithmetic, and the widest intermediate accumulator value per layer
    is recorded against the configured accumulator width.  The bias is
    quantized at ``in_scale * w_scale`` and added *inside* the integer
    accumulation — the accelerator adds it in the accumulator register,
    so it belongs in the saturation report.

    Emulation always has inference semantics: the walk runs under
    :func:`~repro.nn.module.no_grad` with every module flipped to eval
    for the duration (and restored afterwards), so BatchNorm reads its
    running statistics without mutating them and no module retains
    backward caches — even when the caller's network is mid-training.

    Returns the dequantized output and the datapath report.
    """
    modules = [m for node in network._nodes  # noqa: SLF001 - sibling module
               for m in (node.module, node.activation) if m is not None]
    modules.extend(network._bn.values())
    previous = [m.training for m in modules]
    for m in modules:
        m.training = False
    try:
        with no_grad():
            return _emulate(network, x, weight_bits, activation_bits,
                            accumulator_bits)
    finally:
        for m, mode in zip(modules, previous):
            m.training = mode


def _emulate(
    network: GraphNetwork,
    x: np.ndarray,
    weight_bits: int,
    activation_bits: int,
    accumulator_bits: int,
) -> Tuple[np.ndarray, DatapathReport]:
    report = DatapathReport(weight_bits, activation_bits, accumulator_bits)
    acc_limit = 2 ** (accumulator_bits - 1) - 1
    values: Dict[str, np.ndarray] = {}
    # Walk the same lowering GraphNetwork.forward uses (same package).
    for node in network._nodes:  # noqa: SLF001 - sibling-module access
        s = node.spec
        if isinstance(s, spec.Input):
            values[node.name] = x.astype(np.float64)
            continue
        if isinstance(s, spec.Concat):
            values[node.name] = np.concatenate(
                [values[n] for n in node.inputs], axis=1)
            continue
        if isinstance(s, spec.Add):
            total = values[node.inputs[0]].copy()
            for n in node.inputs[1:]:
                total += values[n]
            values[node.name] = total
            continue
        value = values[node.inputs[0]]
        if isinstance(s, (spec.Conv2D, spec.Dense)):
            q_in, in_scale = _quantize(value, activation_bits)
            q_w, w_scale = _quantize(node.module.weight.value, weight_bits)
            if isinstance(s, spec.Conv2D):
                acc = _integer_conv(q_in, q_w, s)
            else:
                acc = q_in.reshape(q_in.shape[0], -1) @ q_w.T
            if getattr(node.module, "bias", None) is not None:
                # The accelerator adds the bias in the accumulator, so
                # quantize it at the accumulator's scale and include it
                # in the integer sum (and hence the saturation report).
                q_b = np.round(
                    node.module.bias.value / (in_scale * w_scale)
                ).astype(np.int64)
                acc = acc + (q_b.reshape(1, -1, 1, 1)
                             if acc.ndim == 4 else q_b)
            peak = int(np.abs(acc).max()) if acc.size else 0
            bits_used = _bits_needed(peak)
            report.per_layer_acc_bits[node.name] = bits_used
            report.max_accumulator_bits_used = max(
                report.max_accumulator_bits_used, bits_used)
            if peak > acc_limit:
                report.saturated_layers.append(node.name)
            value = acc.astype(np.float64) * (in_scale * w_scale)
        else:
            # Pooling / flatten / activation run through the float
            # modules (they are value-preserving or trivially exact).
            value = node.module(value)
        if node.name in network._bn:
            value = network._bn[node.name](value)
        if node.activation is not None:
            value = node.activation(value)
        values[node.name] = value
    return values[network._nodes[-1].name], report


def _integer_conv(q_in: np.ndarray, q_w: np.ndarray,
                  s: spec.Conv2D) -> np.ndarray:
    """Exact integer grouped convolution via im2col on int64 arrays.

    ``im2col`` is dtype-preserving, so the int64 patches never leave
    the integer domain: products and sums are exact for any accumulator
    magnitude that fits int64, not merely below float64's 2**53.
    """
    from repro.nn.functional import conv_output_plane, im2col

    n, _, h, w = q_in.shape
    g = s.groups
    cin_g = s.in_channels // g
    cout_g = s.out_channels // g
    out_h, out_w = conv_output_plane(h, w, s.kernel_size, s.stride,
                                     s.padding)
    out = np.empty((n, s.out_channels, out_h, out_w), dtype=np.int64)
    for gi in range(g):
        xg = q_in[:, gi * cin_g:(gi + 1) * cin_g]
        cols = im2col(xg, s.kernel_size, s.stride, s.padding)
        wmat = q_w[gi * cout_g:(gi + 1) * cout_g].reshape(cout_g, -1)
        out[:, gi * cout_g:(gi + 1) * cout_g] = (
            np.einsum("kp,npq->nkq", wmat, cols)
            .reshape(n, cout_g, out_h, out_w)
        )
    return out
