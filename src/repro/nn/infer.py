"""Inference fast path: graph fusion, execution plan and memory planner.

Three cooperating pieces turn a :class:`~repro.nn.network.GraphNetwork`
into a lean eval-mode runtime:

* **Fusion pass** — :func:`build_inference_plan` folds each conv node's
  ``BatchNorm2D`` running statistics into the convolution weights/bias
  (:func:`fold_batchnorm`) and fuses a trailing ReLU into the conv (or
  dense) epilogue, so a conv+BN+ReLU chain executes as one kernel with
  no intermediate tensors.
* **Memory planner** — :func:`liveness_release_schedule` computes the
  last use of every node's activation; :func:`release_dead` returns
  dead buffers to a :class:`BufferArena` keyed by ``(shape, dtype)``,
  so repeated layer shapes (every fire/bottleneck block) recycle the
  same allocations instead of churning the allocator.
* **Execution plan** — :class:`InferencePlan` runs the fused steps
  under :func:`~repro.nn.module.no_grad`, writing convolution outputs
  and im2col scratch directly into arena buffers.

Fused plans snapshot parameter values at build time: rebuild the plan
after mutating weights (training steps, quantization).
"""

from __future__ import annotations

import copy
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro import obs
from repro.graph import layer_spec as spec
from repro.nn import layers
from repro.nn.functional import conv_output_plane, sliding_windows
from repro.nn.module import Module, no_grad


# -- memory planner ----------------------------------------------------------


class BufferArena:
    """Free-list allocator for activation buffers, keyed by (shape, dtype).

    ``acquire`` hands back a previously released buffer of the exact
    shape/dtype when one is available, otherwise allocates.  Released
    buffers must be exclusively owned — the liveness machinery in
    :func:`release_dead` guarantees that before calling ``release``.

    An arena is deliberately **unlocked** (it sits on the per-layer hot
    path) and therefore single-threaded: its free lists *and* its
    hit/miss/release counters are plain unshared state.  Concurrent
    executors each hold their own replica — :class:`ArenaRegistry`
    hands one per thread, :meth:`InferencePlan.clone` gives one per
    plan replica — and read-time aggregation goes through
    :meth:`merge_stats`.
    """

    def __init__(self) -> None:
        self._free: Dict[Tuple[Tuple[int, ...], np.dtype], List[np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        self.releases = 0
        self.trims = 0

    def acquire(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype))
        bucket = self._free.get(key)
        if bucket:
            self.hits += 1
            obs.count("arena.hits")
            return bucket.pop()
        self.misses += 1
        obs.count("arena.misses")
        return np.empty(key[0], dtype=key[1])

    def release(self, array: np.ndarray) -> bool:
        """Return a buffer to the free list.  Views are refused."""
        if array.base is not None:
            return False
        key = (array.shape, array.dtype)
        self._free.setdefault(key, []).append(array)
        self.releases += 1
        obs.count("arena.releases")
        return True

    @property
    def held_bytes(self) -> int:
        return sum(a.nbytes for bucket in self._free.values() for a in bucket)

    def clear(self) -> None:
        self._free.clear()

    def trim(self, max_held_bytes: int) -> int:
        """Evict free buffers, largest first, until at most ``max_held_bytes``.

        A long-running server otherwise pins its peak-shape scratch
        forever: shape-keyed buckets are never evicted, so one burst of
        large batches leaves hundreds of MiB on the free lists.  Calling
        ``trim`` between batches caps that high water.  Largest buffers
        go first — they are exactly the peak-shape scratch — and the
        most recently released buffer of each surviving bucket is kept,
        so steady-state shapes still recycle.  Returns the number of
        buffers evicted (also accumulated in ``trims``).
        """
        if max_held_bytes < 0:
            raise ValueError("max_held_bytes must be >= 0")
        held = self.held_bytes
        if held <= max_held_bytes:
            return 0
        evicted = 0
        by_size = sorted(
            self._free,
            key=lambda key: int(np.prod(key[0], dtype=np.int64))
            * key[1].itemsize,
            reverse=True)
        for key in by_size:
            bucket = self._free[key]
            while bucket and held > max_held_bytes:
                held -= bucket.pop(0).nbytes
                evicted += 1
            if not bucket:
                del self._free[key]
            if held <= max_held_bytes:
                break
        self.trims += evicted
        if evicted:
            obs.count("arena.trims", evicted)
        return evicted

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "releases": self.releases,
            "trims": self.trims,
            "held_bytes": self.held_bytes,
        }

    @staticmethod
    def merge_stats(stats: Iterable[Mapping[str, int]]) -> Dict[str, int]:
        """Sum per-replica :meth:`stats` dicts into one aggregate."""
        total = {"hits": 0, "misses": 0, "releases": 0, "trims": 0,
                 "held_bytes": 0}
        for snapshot in stats:
            for key in total:
                total[key] += int(snapshot.get(key, 0))
        return total


class ArenaRegistry:
    """Per-thread :class:`BufferArena` replicas with aggregated stats.

    ``get()`` returns the calling thread's private arena (creating it
    on first use), so an unlocked arena never crosses threads; the
    registry keeps a list of every replica it handed out for
    whole-object queries (``stats``, ``held_bytes``, ``clear``).
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._lock = threading.Lock()
        self._replicas: List[BufferArena] = []

    def get(self) -> BufferArena:
        arena = getattr(self._local, "arena", None)
        if arena is None:
            arena = BufferArena()
            with self._lock:
                self._replicas.append(arena)
            self._local.arena = arena
        return arena

    def replicas(self) -> List[BufferArena]:
        with self._lock:
            return list(self._replicas)

    def stats(self) -> Dict[str, int]:
        return BufferArena.merge_stats(a.stats() for a in self.replicas())

    @property
    def held_bytes(self) -> int:
        return sum(a.held_bytes for a in self.replicas())

    def clear(self) -> None:
        for arena in self.replicas():
            arena.clear()


def liveness_release_schedule(
    nodes: Sequence, protect: Set[str],
) -> List[List[str]]:
    """Per-step lists of node names whose activation dies at that step.

    ``nodes`` is any sequence of objects with ``.name`` and ``.inputs``
    executed in order.  The final node's output and every name in
    ``protect`` (graph inputs — caller-owned memory) are never released.
    """
    last_use: Dict[str, int] = {}
    for i, node in enumerate(nodes):
        last_use[node.name] = i
        for name in node.inputs:
            last_use[name] = i
    releases: List[List[str]] = [[] for _ in nodes]
    output_name = nodes[-1].name
    for name, i in last_use.items():
        if name != output_name and name not in protect:
            releases[i].append(name)
    return releases


def _root(array: np.ndarray) -> np.ndarray:
    """The array that actually owns the memory behind a view chain.

    Stops at the last *ndarray* in the base chain: a frombuffer-backed
    input (shared-memory ring payloads in process serving) bottoms out
    at a bytes/memoryview owner, which can never alias an arena buffer.
    """
    while isinstance(array.base, np.ndarray):
        array = array.base
    return array


def release_dead(values: Dict[str, np.ndarray], names: Iterable[str],
                 arena: BufferArena) -> None:
    """Drop dead activations, recycling exclusively-owned buffers.

    A buffer goes back to the arena only when nothing live can alias it:
    views (Flatten's reshape) never own memory, and an owner stays out
    of the arena while any live value is a view of it (or *is* it —
    Identity activations return their input unchanged).
    """
    for name in names:
        array = values.pop(name, None)
        if array is None:
            continue
        if array.base is not None:
            continue
        if any(_root(v) is array for v in values.values()):
            continue
        arena.release(array)


def concat_channels(srcs: Sequence[np.ndarray],
                    arena: Optional[BufferArena] = None) -> np.ndarray:
    """Channel-axis concatenation, arena-backed when an arena is given."""
    if arena is None:
        return np.concatenate(srcs, axis=1)
    shape = list(srcs[0].shape)
    shape[1] = sum(s.shape[1] for s in srcs)
    out = arena.acquire(tuple(shape), np.result_type(*srcs))
    np.concatenate(srcs, axis=1, out=out)
    return out


def add_tensors(srcs: Sequence[np.ndarray],
                arena: Optional[BufferArena] = None) -> np.ndarray:
    """Elementwise sum of fan-in branches, arena-backed when possible."""
    if arena is None:
        total = srcs[0].copy()
    else:
        total = arena.acquire(srcs[0].shape, np.result_type(*srcs))
        np.copyto(total, srcs[0])
    for s in srcs[1:]:
        total += s
    return total


# -- fusion pass -------------------------------------------------------------


def fold_batchnorm(
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    bn: layers.BatchNorm2D,
) -> Tuple[np.ndarray, np.ndarray]:
    """Fold BN running statistics into conv weights and bias.

    ``bn(conv(x)) == conv'(x)`` with ``w' = w * gamma/std`` per output
    channel and ``b' = (b - mean) * gamma/std + beta``, where ``std``
    uses the running variance — exactly what eval-mode BN computes.
    Returns new arrays; the originals are untouched.
    """
    scale = bn.gamma.value / np.sqrt(bn.running_var + bn.eps)
    folded_w = weight * scale.reshape(-1, 1, 1, 1)
    b = bias if bias is not None else np.zeros(weight.shape[0])
    folded_b = (b - bn.running_mean) * scale + bn.beta.value
    return folded_w, folded_b


class FusedConv2D:
    """Conv + folded BN + optional ReLU epilogue, arena-allocated.

    Uses the same batched grouped kernel as :class:`repro.nn.layers.Conv2D`
    but writes the GEMM result and the im2col scratch into arena
    buffers, applying bias and ReLU in place.
    """

    def __init__(self, conv: layers.Conv2D,
                 bn: Optional[layers.BatchNorm2D] = None,
                 relu: bool = False) -> None:
        weight = conv.weight.value
        bias = conv.bias.value if conv.bias is not None else None
        if bn is not None:
            weight, bias = fold_batchnorm(weight, bias, bn)
        else:
            weight = weight.copy()
            bias = bias.copy() if bias is not None else None
        self.in_channels = conv.in_channels
        self.out_channels = conv.out_channels
        self.kernel_size = conv.kernel_size
        self.stride = conv.stride
        self.padding = conv.padding
        self.groups = conv.groups
        self.relu = relu
        self.fused = "conv" + ("+bn" if bn is not None else "") + (
            "+relu" if relu else "")
        g = conv.groups
        kh, kw = conv.kernel_size
        self._cout_g = conv.out_channels // g
        self._cin_g = conv.in_channels // g
        self.depthwise = conv.is_depthwise and g > 1
        # (g, cout_g, cin_g*kh*kw) GEMM view and (g, cout_g, kh, kw)
        # depthwise view of the folded weights.
        self._wmat = np.ascontiguousarray(
            weight.reshape(g, self._cout_g, self._cin_g * kh * kw))
        self._wdw = np.ascontiguousarray(
            weight.reshape(g, self._cout_g, kh, kw)) if self.depthwise else None
        self._bias = bias

    def __call__(self, x: np.ndarray, arena: BufferArena) -> np.ndarray:
        n, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        g = self.groups
        kh, kw = self.kernel_size
        out_h, out_w = conv_output_plane(h, w, self.kernel_size,
                                         self.stride, self.padding)
        dtype = np.result_type(x.dtype, self._wmat.dtype)
        if self.depthwise:
            windows = sliding_windows(x, self.kernel_size, self.stride,
                                      self.padding)
            out = arena.acquire((n, g, self._cout_g, out_h, out_w), dtype)
            np.einsum("ncijpq,cmij->ncmpq", windows, self._wdw, out=out)
            if self._bias is not None:
                out += self._bias.reshape(1, g, self._cout_g, 1, 1)
        else:
            # im2col scratch comes from (and returns to) the arena too.
            scratch = arena.acquire((n, c, kh, kw, out_h, out_w), x.dtype)
            np.copyto(scratch, sliding_windows(x, self.kernel_size,
                                               self.stride, self.padding))
            cols = scratch.reshape(n, g, self._cin_g * kh * kw,
                                   out_h * out_w)
            out = arena.acquire((n, g, self._cout_g, out_h * out_w), dtype)
            np.matmul(self._wmat[None], cols, out=out)
            arena.release(scratch)
            if self._bias is not None:
                out += self._bias.reshape(1, g, self._cout_g, 1)
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out.reshape(n, self.out_channels, out_h, out_w)

    # -- weight export/attach (shared-memory serving) ----------------------

    def export_arrays(self) -> Dict[str, np.ndarray]:
        """The op's weight tensors, keyed for :func:`export_plan`."""
        arrays = {"wmat": self._wmat}
        if self._wdw is not None:
            arrays["wdw"] = self._wdw
        if self._bias is not None:
            arrays["bias"] = self._bias
        return arrays

    def spec_dict(self) -> Dict[str, object]:
        """Picklable scalar attributes (no arrays) to rebuild from."""
        return {
            "in_channels": self.in_channels,
            "out_channels": self.out_channels,
            "kernel_size": self.kernel_size,
            "stride": self.stride,
            "padding": self.padding,
            "groups": self.groups,
            "relu": self.relu,
            "fused": self.fused,
            "cout_g": self._cout_g,
            "cin_g": self._cin_g,
            "depthwise": self.depthwise,
        }

    @classmethod
    def from_arrays(cls, spec: Mapping[str, object],
                    arrays: Mapping[str, np.ndarray]) -> "FusedConv2D":
        """Rebuild an op around externally owned weight views.

        The arrays are used as-is (typically read-only views into a
        shared-memory block), so rebuilding in a worker process costs
        zero weight copies.
        """
        op = cls.__new__(cls)
        op.in_channels = spec["in_channels"]
        op.out_channels = spec["out_channels"]
        op.kernel_size = tuple(spec["kernel_size"])
        op.stride = spec["stride"]
        op.padding = spec["padding"]
        op.groups = spec["groups"]
        op.relu = spec["relu"]
        op.fused = spec["fused"]
        op._cout_g = spec["cout_g"]
        op._cin_g = spec["cin_g"]
        op.depthwise = spec["depthwise"]
        op._wmat = arrays["wmat"]
        op._wdw = arrays.get("wdw")
        op._bias = arrays.get("bias")
        return op


class FusedDense:
    """Dense + optional ReLU epilogue on a snapshot of the weights."""

    def __init__(self, dense, relu: bool = False) -> None:
        self.in_features = dense.in_features
        self.out_features = dense.out_features
        self.relu = relu
        self.fused = "dense" + ("+relu" if relu else "")
        self._weight = dense.weight.value.copy()
        self._bias = (dense.bias.value.copy()
                      if dense.bias is not None else None)

    def __call__(self, x: np.ndarray, arena: BufferArena) -> np.ndarray:
        flat = x.reshape(x.shape[0], -1)
        if flat.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} features, got {flat.shape[1]}")
        dtype = np.result_type(flat.dtype, self._weight.dtype)
        out = arena.acquire((flat.shape[0], self.out_features), dtype)
        # Row-at-a-time so each sample's product has the same shape no
        # matter what batch it rode in on: BLAS routes (B, K) @ (K, N)
        # and (K,) @ (K, N) through different kernels whose rounding
        # differs, which would break the serving guarantee that a
        # batched response is bit-identical to a batch-1 run.
        weight_t = self._weight.T
        for row in range(flat.shape[0]):
            np.matmul(flat[row], weight_t, out=out[row])
        if self._bias is not None:
            out += self._bias
        if self.relu:
            np.maximum(out, 0.0, out=out)
        return out

    # -- weight export/attach (shared-memory serving) ----------------------

    def export_arrays(self) -> Dict[str, np.ndarray]:
        arrays = {"weight": self._weight}
        if self._bias is not None:
            arrays["bias"] = self._bias
        return arrays

    def spec_dict(self) -> Dict[str, object]:
        return {
            "in_features": self.in_features,
            "out_features": self.out_features,
            "relu": self.relu,
            "fused": self.fused,
        }

    @classmethod
    def from_arrays(cls, spec: Mapping[str, object],
                    arrays: Mapping[str, np.ndarray]) -> "FusedDense":
        op = cls.__new__(cls)
        op.in_features = spec["in_features"]
        op.out_features = spec["out_features"]
        op.relu = spec["relu"]
        op.fused = spec["fused"]
        op._weight = arrays["weight"]
        op._bias = arrays.get("bias")
        return op


# -- execution plan ----------------------------------------------------------


@dataclass
class PlanStep:
    """One executable node of an :class:`InferencePlan`."""

    name: str
    kind: str  # input | concat | add | fused_conv | fused_dense | module
    inputs: Tuple[str, ...]
    op: object = None
    fused: str = ""

    def describe(self) -> str:
        label = self.fused or self.kind
        srcs = ", ".join(self.inputs)
        return f"{self.name:<24} {label:<16} <- {srcs}" if srcs else (
            f"{self.name:<24} {label}")


class InferencePlan:
    """A fused, memory-planned eval program for one network.

    ``run`` executes the steps in graph order under ``no_grad``,
    releasing every activation at its last use and recycling buffers
    through the shared :class:`BufferArena`.

    **Threading contract:** one plan serves one thread at a time — the
    arena is unlocked and ``last_peak_live_bytes`` is per-run state.
    Concurrent executors (the :mod:`repro.serve` worker pool) call
    :meth:`clone` once per thread; clones share the immutable fused
    weights, so the memory cost is one arena's activations per thread,
    not a second copy of the model.
    """

    def __init__(self, steps: List[PlanStep], input_names: Set[str],
                 arena: Optional[BufferArena] = None) -> None:
        if not steps:
            raise ValueError("empty plan")
        self.steps = steps
        self.input_names = input_names
        self.arena = arena or BufferArena()
        self._releases = liveness_release_schedule(steps, input_names)
        self.last_peak_live_bytes = 0

    def describe(self) -> str:
        return "\n".join(step.describe() for step in self.steps)

    @property
    def fused_step_count(self) -> int:
        return sum(1 for s in self.steps if s.fused)

    def clone(self) -> "InferencePlan":
        """A replica safe to run on another thread.

        Fused conv/dense ops are shared (they only read their weight
        snapshots), unfused module fallbacks are copied (they flip
        ``training`` around each call), and the clone gets a fresh
        private :class:`BufferArena` with its own counters.
        """
        steps = [
            PlanStep(s.name, s.kind, s.inputs,
                     s.op.clone() if isinstance(s.op, _ModuleStep) else s.op,
                     s.fused)
            for s in self.steps
        ]
        return InferencePlan(steps, set(self.input_names), BufferArena())

    def quantize(self, bits: int = 16):
        """Lower this plan to integer execution.

        Convenience for :func:`repro.nn.quant.quantize_plan` — the
        fused conv steps already carry BatchNorm-folded weights, so the
        quantized plan's per-channel requantization multipliers absorb
        the BN scale for free.  Returns a
        :class:`~repro.nn.quant.QuantizedInferencePlan`.
        """
        from repro.nn.quant import quantize_plan

        return quantize_plan(self, bits)

    def run(self, x: np.ndarray) -> np.ndarray:
        values: Dict[str, np.ndarray] = {}
        peak = 0
        with obs.span("infer.plan", steps=len(self.steps),
                      batch=int(x.shape[0])) as plan_span, no_grad():
            for i, step in enumerate(self.steps):
                with obs.span("infer.step", step=step.name,
                              kind=step.fused or step.kind):
                    if step.kind == "input":
                        values[step.name] = x
                    elif step.kind == "concat":
                        values[step.name] = concat_channels(
                            [values[n] for n in step.inputs], self.arena)
                    elif step.kind == "add":
                        values[step.name] = add_tensors(
                            [values[n] for n in step.inputs], self.arena)
                    elif step.kind in ("fused_conv", "fused_dense"):
                        values[step.name] = step.op(values[step.inputs[0]],
                                                    self.arena)
                    else:
                        values[step.name] = step.op(values[step.inputs[0]])
                    peak = max(peak, sum(v.nbytes for v in values.values()))
                    release_dead(values, self._releases[i], self.arena)
            plan_span.annotate(peak_live_bytes=peak)
        self.last_peak_live_bytes = peak
        obs.gauge("infer.peak_live_bytes", peak)
        return values[self.steps[-1].name]

    __call__ = run


def build_inference_plan(net, arena: Optional[BufferArena] = None
                         ) -> InferencePlan:
    """Compile a :class:`~repro.nn.network.GraphNetwork` into a fused plan.

    Every Conv2D node absorbs its attached BatchNorm (running stats)
    and trailing ReLU; Dense nodes absorb their ReLU.  All other nodes
    execute their existing modules (forward-only, under ``no_grad``).
    Parameter values are snapshotted — rebuild after mutating weights.
    """
    steps: List[PlanStep] = []
    input_names: Set[str] = set()
    for node in net._nodes:
        s = node.spec
        inputs = tuple(node.inputs)
        if isinstance(s, spec.Input):
            input_names.add(node.name)
            steps.append(PlanStep(node.name, "input", ()))
        elif isinstance(s, spec.Concat):
            steps.append(PlanStep(node.name, "concat", inputs))
        elif isinstance(s, spec.Add):
            steps.append(PlanStep(node.name, "add", inputs))
        elif isinstance(node.module, layers.Conv2D):
            relu = isinstance(node.activation, layers.ReLU)
            op = FusedConv2D(node.module, net._bn.get(node.name), relu)
            steps.append(PlanStep(node.name, "fused_conv", inputs, op,
                                  op.fused))
        elif isinstance(node.module, layers.Dense):
            relu = isinstance(node.activation, layers.ReLU)
            op = FusedDense(node.module, relu)
            steps.append(PlanStep(node.name, "fused_dense", inputs, op,
                                  op.fused))
        else:
            op = _ModuleStep(node.module, node.activation)
            steps.append(PlanStep(node.name, "module", inputs, op))
    return InferencePlan(steps, input_names, arena)


class _ModuleStep:
    """Unfused fallback: run the node's module (+ activation) eval-style.

    The plan always has inference semantics, so the shared modules are
    flipped to eval around the call (Dropout must be a no-op and
    BatchNorm must read running stats even if the owning network is
    currently in training mode) and restored afterwards.
    """

    def __init__(self, module: Module, activation: Optional[Module]) -> None:
        self.module = module
        self.activation = activation

    def clone(self) -> "_ModuleStep":
        """Replica with privately owned modules (parameters shared).

        A shallow module copy gives the clone its own ``training`` flag
        and forward-cache slots while aliasing the parameter arrays, so
        per-thread plan replicas never toggle each other's mode.
        """
        return _ModuleStep(
            copy.copy(self.module),
            copy.copy(self.activation) if self.activation is not None
            else None)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        modules = [m for m in (self.module, self.activation) if m is not None]
        previous = [m.training for m in modules]
        for m in modules:
            m.training = False
        try:
            out = self.module(x)
            if self.activation is not None:
                out = self.activation(out)
        finally:
            for m, mode in zip(modules, previous):
                m.training = mode
        return out


# -- plan export/attach (shared-memory serving) ------------------------------


@dataclass(frozen=True)
class TemplateStep:
    """Picklable skeleton of one :class:`PlanStep` (no weight arrays)."""

    name: str
    kind: str
    inputs: Tuple[str, ...]
    fused: str
    op_spec: Optional[Dict[str, object]]
    module: Optional[_ModuleStep]


@dataclass(frozen=True)
class PlanTemplate:
    """Everything needed to rebuild a plan *except* the weight arrays.

    The template is small and picklable (module fallback steps — pools,
    softmax, flatten — travel whole; fused conv/dense steps travel as
    scalar spec dicts).  Pair it with the array dict from
    :func:`export_plan` — typically mapped into shared memory by
    :mod:`repro.serve.shm` — and :func:`plan_from_template` yields a
    plan whose fused weights alias the provided arrays, copy-free.
    """

    steps: Tuple[TemplateStep, ...]
    input_names: Tuple[str, ...]


def export_plan(plan: InferencePlan
                ) -> Tuple[Dict[str, np.ndarray], PlanTemplate]:
    """Split a plan into (weight arrays, picklable template).

    Fused weights are frozen after :func:`build_inference_plan`, so the
    returned arrays can be published once (e.g. into a shared-memory
    block) and mapped read-only by any number of worker processes.
    """
    arrays: Dict[str, np.ndarray] = {}
    steps: List[TemplateStep] = []
    for i, step in enumerate(plan.steps):
        if step.kind in ("fused_conv", "fused_dense"):
            for key, array in step.op.export_arrays().items():
                arrays[f"step{i}.{key}"] = array
            steps.append(TemplateStep(step.name, step.kind, step.inputs,
                                      step.fused, step.op.spec_dict(), None))
        elif step.kind == "module":
            steps.append(TemplateStep(step.name, step.kind, step.inputs,
                                      step.fused, None, step.op.clone()))
        else:
            steps.append(TemplateStep(step.name, step.kind, step.inputs,
                                      step.fused, None, None))
    return arrays, PlanTemplate(tuple(steps), tuple(plan.input_names))


def plan_from_template(template: PlanTemplate,
                       arrays: Mapping[str, np.ndarray],
                       arena: Optional[BufferArena] = None) -> InferencePlan:
    """Rebuild an executable plan around externally owned weight arrays.

    The inverse of :func:`export_plan`.  Fused ops alias the provided
    arrays (no copies); module steps are cloned so the rebuilt plan owns
    its ``training`` flags.  The plan gets a fresh private arena unless
    one is passed.
    """
    steps: List[PlanStep] = []
    for i, t in enumerate(template.steps):
        if t.kind in ("fused_conv", "fused_dense"):
            prefix = f"step{i}."
            local = {key[len(prefix):]: value for key, value in arrays.items()
                     if key.startswith(prefix)}
            cls = FusedConv2D if t.kind == "fused_conv" else FusedDense
            op = cls.from_arrays(t.op_spec, local)
            steps.append(PlanStep(t.name, t.kind, t.inputs, op, t.fused))
        elif t.kind == "module":
            steps.append(PlanStep(t.name, t.kind, t.inputs,
                                  t.module.clone(), t.fused))
        else:
            steps.append(PlanStep(t.name, t.kind, t.inputs, None, t.fused))
    return InferencePlan(steps, set(template.input_names), arena)
