"""Low-level numpy kernels shared by the layer modules.

Convolutions use im2col/col2im so the heavy lifting is a single GEMM —
the standard trick for a pure-numpy framework.  All activation tensors
are NCHW float32/float64 arrays with an explicit batch dimension (the
accelerator model elides batch because the paper studies batch 1; the
trainer does not).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def pad2d(x: np.ndarray, padding: Tuple[int, int],
          value: float = 0.0) -> np.ndarray:
    """Pad the two trailing (spatial) dimensions with ``value``.

    The default (zero) is correct for convolution and average pooling;
    max pooling must pad with ``-inf`` so a padded window can never
    prefer the pad over a negative activation.  Dtype-preserving:
    ``np.pad`` casts ``value`` to the input's dtype, so integer inputs
    stay integer (integer max pooling pads with the dtype minimum
    instead of ``-inf``).
    """
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    return np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)),
                  constant_values=value)


def conv_output_plane(
    in_h: int, in_w: int,
    kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int],
) -> Tuple[int, int]:
    """Output height/width of a strided, padded sliding window."""
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h = (in_h + 2 * ph - kh) // sh + 1
    out_w = (in_w + 2 * pw - kw) // sw + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"kernel {kernel} with stride {stride} and padding {padding} "
            f"does not fit input plane {(in_h, in_w)}"
        )
    return out_h, out_w


def sliding_windows(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    pad_value: float = 0.0,
) -> np.ndarray:
    """Strided window *view* ``(N, C, kh, kw, out_h, out_w)``.

    No data is copied beyond the padding itself (none for unpadded
    inputs), so reductions over the window axes — e.g. the depthwise
    convolution fast path — never materialize an im2col matrix.  The
    view aliases overlapping windows; callers must treat it read-only.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    sh, sw = stride
    out_h, out_w = conv_output_plane(h, w, kernel, stride, padding)
    xp = pad2d(x, padding, value=pad_value)
    shape = (n, c, kh, kw, out_h, out_w)
    strides = (
        xp.strides[0], xp.strides[1],
        xp.strides[2], xp.strides[3],
        xp.strides[2] * sh, xp.strides[3] * sw,
    )
    return np.lib.stride_tricks.as_strided(xp, shape=shape, strides=strides)


def im2col(
    x: np.ndarray,
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
    pad_value: float = 0.0,
) -> np.ndarray:
    """Unfold sliding windows into a matrix.

    Input ``(N, C, H, W)`` becomes ``(N, C * kh * kw, out_h * out_w)``.

    Dtype-preserving: integer inputs stay integer (the gather copy and
    reshape never change dtype), which the exact-integer convolution in
    :mod:`repro.nn.fixed_point` and the int16/int8 plan in
    :mod:`repro.nn.quant` rely on — routing patches through float64
    would silently cap exactness at 2**53.
    """
    n, c, h, w = x.shape
    kh, kw = kernel
    out_h, out_w = conv_output_plane(h, w, kernel, stride, padding)
    windows = sliding_windows(x, kernel, stride, padding, pad_value=pad_value)
    # ascontiguousarray performs the single unavoidable gather copy; the
    # reshape afterwards is then a free view.
    return np.ascontiguousarray(windows).reshape(n, c * kh * kw,
                                                 out_h * out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: Tuple[int, int],
    stride: Tuple[int, int],
    padding: Tuple[int, int],
) -> np.ndarray:
    """Fold an im2col matrix back, summing overlapping windows.

    This is the adjoint of :func:`im2col`, used for convolution input
    gradients.
    """
    n, c, h, w = input_shape
    kh, kw = kernel
    sh, sw = stride
    ph, pw = padding
    out_h, out_w = conv_output_plane(h, w, kernel, stride, padding)
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    xp = np.zeros((n, c, h + 2 * ph, w + 2 * pw), dtype=cols.dtype)
    for i in range(kh):
        i_end = i + sh * out_h
        for j in range(kw):
            j_end = j + sw * out_w
            xp[:, :, i:i_end:sh, j:j_end:sw] += cols[:, :, i, j]
    if ph or pw:
        return xp[:, :, ph:ph + h, pw:pw + w]
    return xp


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    return shifted - np.log(np.exp(shifted).sum(axis=axis, keepdims=True))


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to one-hot ``(N, num_classes)``."""
    if labels.ndim != 1:
        raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.min() < 0 or labels.max() >= num_classes:
        raise ValueError("label out of range")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out
