"""Loss functions for the numpy trainer."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.nn.functional import log_softmax, one_hot, softmax


class CrossEntropyLoss:
    """Softmax + negative log-likelihood on integer labels.

    Operates on raw logits ``(N, K)`` — do not put a Softmax layer in
    front of it (the combined gradient ``p - y`` is computed here, which
    is both faster and numerically stabler).
    """

    def __call__(self, logits: np.ndarray,
                 labels: np.ndarray) -> Tuple[float, np.ndarray]:
        """Return ``(mean loss, gradient w.r.t. logits)``."""
        if logits.ndim != 2:
            raise ValueError(f"logits must be (N, K), got {logits.shape}")
        n, k = logits.shape
        targets = one_hot(np.asarray(labels), k)
        logp = log_softmax(logits, axis=-1)
        loss = float(-(targets * logp).sum() / n)
        grad = (softmax(logits, axis=-1) - targets) / n
        return loss, grad


class MSELoss:
    """Mean squared error (used in regression-style unit tests)."""

    def __call__(self, outputs: np.ndarray,
                 targets: np.ndarray) -> Tuple[float, np.ndarray]:
        if outputs.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: {outputs.shape} vs {targets.shape}")
        diff = outputs - targets
        loss = float((diff ** 2).mean())
        grad = 2.0 * diff / diff.size
        return loss, grad
