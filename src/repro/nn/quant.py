"""Post-training integer quantization.

The Squeezelerator datapath is 16-bit integer (Figure 2), so a trained
float model must be quantized before deployment.  We implement symmetric
per-tensor linear quantization of weights (and optionally activations on
the fly), the standard scheme for integer NN accelerators:

    q = clip(round(x / scale), -qmax, qmax),   x_hat = q * scale

with ``scale = max|x| / qmax``.  A quantized network wraps the float
network and fakes integer arithmetic by dequantizing — numerically
equivalent to integer execution for linear layers, and sufficient to
measure the accuracy cost of 16-bit (negligible) vs 8-bit (small) vs
4-bit (visible) deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.nn.network import GraphNetwork


def symmetric_quantize(x: np.ndarray, bits: int) -> Tuple[np.ndarray, float]:
    """The one symmetric-quantization primitive; returns ``(q, scale)``.

    ``q`` is an int64 array of clipped, rounded quantization levels and
    ``scale`` the per-tensor step, so ``q * scale`` is the dequantized
    (fake-quantized) tensor.  Both this module and the integer-datapath
    emulation (:mod:`repro.nn.fixed_point`) build on it, so the two
    cannot drift.

    Convention for the degenerate all-zero tensor: ``q`` is all zeros
    and ``scale`` is 1.0 — a usable (non-zero) scale whose dequantized
    product is still exactly the input.
    """
    qmax = 2 ** (bits - 1) - 1
    max_abs = float(np.abs(x).max())
    if max_abs == 0.0:
        return np.zeros(x.shape, dtype=np.int64), 1.0
    scale = max_abs / qmax
    q = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int64)
    return q, scale


@dataclass(frozen=True)
class QuantizationSpec:
    """Bit width and derived integer range for symmetric quantization."""

    bits: int = 16

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ValueError("bits must be in [2, 32]")

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1


@dataclass(frozen=True)
class TensorQuantization:
    """Result of quantizing one tensor."""

    name: str
    scale: float
    bits: int
    max_abs_error: float


def quantize_tensor(x: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Symmetric fake-quantization of one tensor (returns float values)."""
    q, scale = symmetric_quantize(x, spec.bits)
    return q.astype(np.float64) * scale


def quantize_network(network: GraphNetwork,
                     spec: QuantizationSpec = QuantizationSpec()) -> List[TensorQuantization]:
    """Quantize every parameter of a network in place.

    Returns a per-tensor report (scale and introduced error) so callers
    can audit which layers are quantization-sensitive.  All-zero
    tensors report scale 1.0 (the :func:`symmetric_quantize`
    convention).
    """
    reports: List[TensorQuantization] = []
    for param in network.parameters():
        original = param.value.copy()
        q, scale = symmetric_quantize(original, spec.bits)
        param.value = q.astype(np.float64) * scale
        reports.append(TensorQuantization(
            name=param.name,
            scale=scale,
            bits=spec.bits,
            max_abs_error=float(np.abs(param.value - original).max()),
        ))
    return reports


def quantization_sweep(
    network: GraphNetwork,
    images: np.ndarray,
    labels: np.ndarray,
    bit_widths: List[int],
) -> Dict[int, float]:
    """Accuracy at each bit width (restoring float weights in between)."""
    saved = network.state_dict()
    results: Dict[int, float] = {}
    for bits in bit_widths:
        network.load_state_dict(saved)
        quantize_network(network, QuantizationSpec(bits))
        predictions = network.predict(images)
        results[bits] = float((predictions == labels).mean())
    network.load_state_dict(saved)
    return results
