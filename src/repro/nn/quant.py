"""Post-training integer quantization.

The Squeezelerator datapath is 16-bit integer (Figure 2), so a trained
float model must be quantized before deployment.  We implement symmetric
per-tensor linear quantization of weights (and optionally activations on
the fly), the standard scheme for integer NN accelerators:

    q = clip(round(x / scale), -qmax, qmax),   x_hat = q * scale

with ``scale = max|x| / qmax``.  A quantized network wraps the float
network and fakes integer arithmetic by dequantizing — numerically
equivalent to integer execution for linear layers, and sufficient to
measure the accuracy cost of 16-bit (negligible) vs 8-bit (small) vs
4-bit (visible) deployment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.nn.network import GraphNetwork


@dataclass(frozen=True)
class QuantizationSpec:
    """Bit width and derived integer range for symmetric quantization."""

    bits: int = 16

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ValueError("bits must be in [2, 32]")

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1


@dataclass(frozen=True)
class TensorQuantization:
    """Result of quantizing one tensor."""

    name: str
    scale: float
    bits: int
    max_abs_error: float


def quantize_tensor(x: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Symmetric fake-quantization of one tensor (returns float values)."""
    max_abs = float(np.abs(x).max())
    if max_abs == 0.0:
        return x.copy()
    scale = max_abs / spec.qmax
    q = np.clip(np.round(x / scale), -spec.qmax, spec.qmax)
    return q * scale


def quantize_network(network: GraphNetwork,
                     spec: QuantizationSpec = QuantizationSpec()) -> List[TensorQuantization]:
    """Quantize every parameter of a network in place.

    Returns a per-tensor report (scale and introduced error) so callers
    can audit which layers are quantization-sensitive.
    """
    reports: List[TensorQuantization] = []
    for param in network.parameters():
        original = param.value.copy()
        param.value = quantize_tensor(param.value, spec)
        max_abs = float(np.abs(original).max())
        scale = max_abs / spec.qmax if max_abs else 0.0
        reports.append(TensorQuantization(
            name=param.name,
            scale=scale,
            bits=spec.bits,
            max_abs_error=float(np.abs(param.value - original).max()),
        ))
    return reports


def quantization_sweep(
    network: GraphNetwork,
    images: np.ndarray,
    labels: np.ndarray,
    bit_widths: List[int],
) -> Dict[int, float]:
    """Accuracy at each bit width (restoring float weights in between)."""
    saved = network.state_dict()
    results: Dict[int, float] = {}
    for bits in bit_widths:
        network.load_state_dict(saved)
        quantize_network(network, QuantizationSpec(bits))
        predictions = network.predict(images)
        results[bits] = float((predictions == labels).mean())
    network.load_state_dict(saved)
    return results
