"""Post-training integer quantization and the integer inference plan.

The Squeezelerator datapath is 16-bit integer (Figure 2), so a trained
float model must be quantized before deployment.  We implement symmetric
per-tensor linear quantization of weights (and optionally activations on
the fly), the standard scheme for integer NN accelerators:

    q = clip(round(x / scale), -qmax, qmax),   x_hat = q * scale

with ``scale = max|x| / qmax``.  A quantized network wraps the float
network and fakes integer arithmetic by dequantizing — numerically
equivalent to integer execution for linear layers, and sufficient to
measure the accuracy cost of 16-bit (negligible) vs 8-bit (small) vs
4-bit (visible) deployment.

Beyond fake quantization, :func:`quantize_plan` lowers a float
:class:`~repro.nn.infer.InferencePlan` into a
:class:`QuantizedInferencePlan` whose activations *stay* narrow (int16,
or int8 at ``bits<=8``) between layers: fused conv/dense steps run an
integer GEMM over pre-quantized per-channel weights and requantize in
the epilogue, so the stored activation footprint drops 4x (8x at int8)
versus the float64 plan.

Rounding convention
-------------------
Every quantizer in this package rounds with :func:`numpy.round` — IEEE
round-half-to-even ("banker's rounding": 0.5 -> 0, 1.5 -> 2, 2.5 -> 2).
Both :mod:`repro.nn.fixed_point` (the bit-accuracy oracle) and the
integer plan inherit the convention through the shared primitives here,
so the two paths cannot drift.

Integer GEMM in float64 containers
----------------------------------
The hot GEMM keeps the *weights* as float64 arrays holding exact
integer values so BLAS does the heavy lifting; float64 arithmetic on
integers is exact below 2**53, and :func:`quantize_plan` verifies the
worst-case accumulator bound ``K * qmax_w * qmax_x`` stays far under
that for every layer (at int16 the bound needs K > 8e6 to fail).  The
emulation oracle (:func:`repro.nn.fixed_point.emulate_fixed_point`)
instead accumulates in true int64 — cross-checking the two is how the
exactness claim is tested.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.nn import layers
from repro.nn.functional import conv_output_plane, sliding_windows
from repro.nn.infer import (
    BufferArena,
    InferencePlan,
    PlanStep,
    _ModuleStep,
    build_inference_plan,
    liveness_release_schedule,
    release_dead,
)
from repro.nn.module import Identity, no_grad
from repro.nn.network import GraphNetwork

_F64 = np.dtype(np.float64)

#: Exact-integer guard for GEMM in float64 containers: accumulators must
#: stay below 2**53 for float64 addition to be exact; we keep margin for
#: the quantized bias added on top.
_ACC_EXACT_BITS = 51


def symmetric_quantize(x: np.ndarray, bits: int) -> Tuple[np.ndarray, float]:
    """The one symmetric-quantization primitive; returns ``(q, scale)``.

    ``q`` is an int64 array of clipped, rounded quantization levels and
    ``scale`` the per-tensor step, so ``q * scale`` is the dequantized
    (fake-quantized) tensor.  Both this module and the integer-datapath
    emulation (:mod:`repro.nn.fixed_point`) build on it, so the two
    cannot drift.

    Rounding is :func:`numpy.round` — IEEE half-to-even.  Non-finite
    inputs (NaN/inf) raise ``ValueError``: a NaN would silently poison
    the scale (``max|x|`` is NaN) and an inf would quantize everything
    else to zero, so both are treated as caller bugs.

    Convention for the degenerate all-zero tensor: ``q`` is all zeros
    and ``scale`` is 1.0 — a usable (non-zero) scale whose dequantized
    product is still exactly the input.
    """
    x = np.asarray(x)
    if x.size and not np.all(np.isfinite(x)):
        raise ValueError(
            "symmetric_quantize: input contains non-finite values "
            "(NaN/inf); quantization scales would be meaningless")
    qmax = 2 ** (bits - 1) - 1
    max_abs = float(np.abs(x).max()) if x.size else 0.0
    if max_abs == 0.0:
        return np.zeros(x.shape, dtype=np.int64), 1.0
    scale = max_abs / qmax
    q = np.clip(np.round(x / scale), -qmax, qmax).astype(np.int64)
    return q, scale


def activation_dtype(bits: int) -> np.dtype:
    """Smallest signed integer dtype holding ``bits``-bit activations."""
    if bits <= 8:
        return np.dtype(np.int8)
    if bits <= 16:
        return np.dtype(np.int16)
    return np.dtype(np.int32)


def quantize_batch(x: np.ndarray, bits: int
                   ) -> Tuple[np.ndarray, np.ndarray]:
    """Per-sample symmetric quantization of a batched activation tensor.

    Returns ``(q, scales)`` where ``q`` has :func:`activation_dtype`
    and ``scales`` is one float per *sample* (leading axis).  Scales are
    per-sample rather than per-batch so that a sample's quantized bytes
    never depend on what else rode in its batch — the serving runtime's
    bit-identical-batching guarantee carries over to the integer path.
    Same rounding (half-to-even) and all-zero convention (scale 1.0) as
    :func:`symmetric_quantize`; non-finite inputs raise ``ValueError``.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.shape[0]
    flat = x.reshape(n, -1)
    if flat.size and not np.all(np.isfinite(flat)):
        raise ValueError(
            "quantize_batch: input contains non-finite values (NaN/inf)")
    qmax = 2 ** (bits - 1) - 1
    max_abs = (np.abs(flat).max(axis=1) if flat.shape[1]
               else np.zeros(n, dtype=np.float64))
    scales = np.where(max_abs == 0.0, 1.0, max_abs / qmax)
    broadcast = scales.reshape((n,) + (1,) * (x.ndim - 1))
    q = np.clip(np.round(x / broadcast), -qmax, qmax)
    return q.astype(activation_dtype(bits)), scales


def dequantize_batch(q: np.ndarray, scales: np.ndarray) -> np.ndarray:
    """Inverse of :func:`quantize_batch` (per-sample scales)."""
    out = q.astype(np.float64)
    out *= scales.reshape((q.shape[0],) + (1,) * (q.ndim - 1))
    return out


def _per_channel_quantize(w2d: np.ndarray, bits: int
                          ) -> Tuple[np.ndarray, np.ndarray]:
    """Row-wise (per-output-channel) symmetric quantization.

    ``w2d`` is ``(C, K)``; returns integer levels with
    :func:`activation_dtype` plus per-row scales ``(C,)`` (1.0 for
    all-zero rows, matching :func:`symmetric_quantize`).
    """
    if w2d.size and not np.all(np.isfinite(w2d)):
        raise ValueError(
            "per-channel quantization: weights contain non-finite values")
    qmax = 2 ** (bits - 1) - 1
    max_abs = np.abs(w2d).max(axis=1) if w2d.size else np.zeros(w2d.shape[0])
    scales = np.where(max_abs == 0.0, 1.0, max_abs / qmax)
    q = np.clip(np.round(w2d / scales[:, None]), -qmax, qmax)
    return q.astype(activation_dtype(bits)), scales


def _bits_needed(value: int) -> int:
    """Signed bits needed to hold ``value`` exactly (0 -> 1)."""
    if value == 0:
        return 1
    return int(value).bit_length() + 1


@dataclass(frozen=True)
class QuantizationSpec:
    """Bit width and derived integer range for symmetric quantization."""

    bits: int = 16

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 32:
            raise ValueError("bits must be in [2, 32]")

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1


@dataclass(frozen=True)
class TensorQuantization:
    """Result of quantizing one tensor."""

    name: str
    scale: float
    bits: int
    max_abs_error: float


def quantize_tensor(x: np.ndarray, spec: QuantizationSpec) -> np.ndarray:
    """Symmetric fake-quantization of one tensor (returns float values)."""
    q, scale = symmetric_quantize(x, spec.bits)
    return q.astype(np.float64) * scale


def quantize_network(network: GraphNetwork,
                     spec: QuantizationSpec = QuantizationSpec()) -> List[TensorQuantization]:
    """Quantize every parameter of a network in place.

    Returns a per-tensor report (scale and introduced error) so callers
    can audit which layers are quantization-sensitive.  All-zero
    tensors report scale 1.0 (the :func:`symmetric_quantize`
    convention).
    """
    reports: List[TensorQuantization] = []
    for param in network.parameters():
        original = param.value.copy()
        q, scale = symmetric_quantize(original, spec.bits)
        param.value = q.astype(np.float64) * scale
        reports.append(TensorQuantization(
            name=param.name,
            scale=scale,
            bits=spec.bits,
            max_abs_error=float(np.abs(param.value - original).max()),
        ))
    return reports


def quantization_sweep(
    network: GraphNetwork,
    images: np.ndarray,
    labels: np.ndarray,
    bit_widths: List[int],
) -> Dict[int, float]:
    """Accuracy at each bit width (restoring float weights in between)."""
    saved = network.state_dict()
    results: Dict[int, float] = {}
    for bits in bit_widths:
        network.load_state_dict(saved)
        quantize_network(network, QuantizationSpec(bits))
        predictions = network.predict(images)
        results[bits] = float((predictions == labels).mean())
    network.load_state_dict(saved)
    return results


# -- integer inference plan --------------------------------------------------


class _QuantizedGemmOp:
    """Shared requantizing epilogue for quantized conv/dense steps.

    Subclasses provide the integer accumulation into a float64 buffer
    of exact integer values; :meth:`_requantize` then

    1. quantizes the float bias at ``in_scale * w_scale`` and adds it
       *inside* the integer accumulation (per-channel, per-sample),
    2. records the accumulator peak (for the per-layer report),
    3. applies the fused ReLU on the integer accumulator, and
    4. folds dequantization + fresh output quantization into one
       per-(sample, channel) multiplier, writing narrow integers.

    Scales are per-*sample* for activations and per-*output-channel*
    for weights, so batched execution is bit-identical to batch-1.
    """

    bits: int
    relu: bool
    weight_scale: np.ndarray  # (C,) per-output-channel
    _bias: Optional[np.ndarray]

    def _init_quant(self, bits: int) -> None:
        self.bits = int(bits)
        self.qmax = 2 ** (bits - 1) - 1
        self.dtype = activation_dtype(bits)

    def _check_exact(self, reduce_dim: int, label: str) -> None:
        bound = reduce_dim * self.qmax * self.qmax
        if bound >= 2 ** _ACC_EXACT_BITS:
            raise ValueError(
                f"{label}: worst-case accumulator {bound} exceeds the "
                f"float64 exact-integer range (2**{_ACC_EXACT_BITS}); "
                f"reduce bits= or the layer fan-in")

    def _requantize(self, acc: np.ndarray, acc_owner: Optional[np.ndarray],
                    x_scales: np.ndarray, arena: BufferArena,
                    stats: Optional[Dict[str, Dict[str, float]]],
                    name: str) -> Tuple[np.ndarray, np.ndarray]:
        q_y = arena.acquire(acc.shape, self.dtype)
        y_scales = self.requantize_into(acc, x_scales, q_y, stats, name)
        if acc_owner is not None:
            arena.release(acc_owner)
        return q_y, y_scales

    def requantize_into(self, acc: np.ndarray, x_scales: np.ndarray,
                        q_out: np.ndarray,
                        stats: Optional[Dict[str, Dict[str, float]]] = None,
                        name: str = "") -> np.ndarray:
        """The epilogue proper, writing into ``q_out`` (destroys ``acc``).

        Shared verbatim by the interpreted plan and the AOT-compiled
        program (:mod:`repro.nn.compile`), so the two stay bit-identical
        by construction.  Returns the per-sample output scales.
        """
        n, channels = acc.shape[0], acc.shape[1]
        extra = (1,) * (acc.ndim - 2)
        # Dequantization step per accumulator unit: one per (sample, ch).
        dequant = x_scales[:, None] * self.weight_scale[None, :]
        if self._bias is not None:
            qb = np.round(self._bias[None, :] / dequant)
            # Degenerate scales could push the integer bias outside the
            # exact-float64 range; clamp so arithmetic stays exact (the
            # accumulator report still shows the blow-up).
            np.clip(qb, -2.0 ** _ACC_EXACT_BITS, 2.0 ** _ACC_EXACT_BITS,
                    out=qb)
            acc += qb.reshape((n, channels) + extra)
        flat = acc.reshape(n, channels, -1)
        peak = float(np.abs(flat).max()) if flat.size else 0.0
        if stats is not None:
            stats[name] = {
                "acc_peak": int(peak),
                "acc_bits": _bits_needed(int(peak)),
                "weight_scale_max": float(self.weight_scale.max()),
                "weight_scale_min": float(self.weight_scale.min()),
            }
        if self.relu:
            np.maximum(acc, 0.0, out=acc)
        # Per-sample output scale from the dequantized magnitudes.
        mags = np.abs(flat).max(axis=2) if flat.size else np.zeros(
            (n, channels))
        ymax = (mags * dequant).max(axis=1) if channels else np.zeros(n)
        y_scales = np.where(ymax == 0.0, 1.0, ymax / self.qmax)
        if stats is not None:
            stats[name]["out_scale_max"] = float(y_scales.max())
        multiplier = dequant / y_scales[:, None]
        acc *= multiplier.reshape((n, channels) + extra)
        np.round(acc, out=acc)
        np.clip(acc, -self.qmax, self.qmax, out=acc)
        np.copyto(q_out, acc, casting="unsafe")
        return y_scales


class QuantizedConv2D(_QuantizedGemmOp):
    """Integer conv: pre-quantized per-channel weights + requant epilogue.

    Built from a :class:`~repro.nn.infer.FusedConv2D`, so the weights
    being quantized already carry the folded BatchNorm scale — the
    requantization multiplier therefore folds BN, dequantization and
    the fresh output scale into a single per-(sample, channel) float.

    ``qweight`` holds the narrow integer levels (the deployment
    artifact); ``_wmat``/``_wdw`` are float64 copies of those *exact
    integer values* so the GEMM runs through BLAS while every
    accumulator stays exact (bound checked at construction).
    """

    def __init__(self, fused, bits: int = 16) -> None:
        self._init_quant(bits)
        self.in_channels = fused.in_channels
        self.out_channels = fused.out_channels
        self.kernel_size = fused.kernel_size
        self.stride = fused.stride
        self.padding = fused.padding
        self.groups = fused.groups
        self.relu = fused.relu
        self.depthwise = fused.depthwise
        self._cout_g = fused._cout_g
        self._cin_g = fused._cin_g
        self.fused = f"{fused.fused}+int{bits}"
        g, cout_g, k = fused._wmat.shape
        self._check_exact(k, f"QuantizedConv2D({fused.fused})")
        q, scales = _per_channel_quantize(
            fused._wmat.reshape(g * cout_g, k), bits)
        self.qweight = np.ascontiguousarray(q.reshape(g, cout_g, k))
        self.weight_scale = scales
        self._wmat = self.qweight.astype(np.float64)
        kh, kw = self.kernel_size
        self._wdw = (self._wmat.reshape(g, cout_g, kh, kw)
                     if self.depthwise else None)
        self._bias = None if fused._bias is None else fused._bias.copy()

    def __call__(self, q_x: np.ndarray, x_scales: np.ndarray,
                 arena: BufferArena,
                 stats: Optional[Dict[str, Dict[str, float]]] = None,
                 name: str = "") -> Tuple[np.ndarray, np.ndarray]:
        n, c, h, w = q_x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        g = self.groups
        kh, kw = self.kernel_size
        out_h, out_w = conv_output_plane(h, w, self.kernel_size,
                                         self.stride, self.padding)
        if self.depthwise:
            # Symmetric quantization has zero-point 0, so zero padding
            # is exact in the integer domain too.
            windows = sliding_windows(q_x, self.kernel_size, self.stride,
                                      self.padding)
            acc_owner = arena.acquire((n, g, self._cout_g, out_h, out_w),
                                      _F64)
            np.einsum("ncijpq,cmij->ncmpq", windows, self._wdw,
                      out=acc_owner)
        else:
            scratch = arena.acquire((n, c, kh, kw, out_h, out_w), q_x.dtype)
            np.copyto(scratch, sliding_windows(q_x, self.kernel_size,
                                               self.stride, self.padding))
            cols = scratch.reshape(n, g, self._cin_g * kh * kw,
                                   out_h * out_w)
            acc_owner = arena.acquire((n, g, self._cout_g, out_h * out_w),
                                      _F64)
            np.matmul(self._wmat[None], cols, out=acc_owner)
            arena.release(scratch)
        acc = acc_owner.reshape(n, self.out_channels, out_h, out_w)
        return self._requantize(acc, acc_owner, x_scales, arena, stats, name)


class QuantizedDense(_QuantizedGemmOp):
    """Integer dense layer with per-output-feature weight scales."""

    def __init__(self, fused, bits: int = 16) -> None:
        self._init_quant(bits)
        self.in_features = fused.in_features
        self.out_features = fused.out_features
        self.relu = fused.relu
        self.fused = f"{fused.fused}+int{bits}"
        self._check_exact(self.in_features,
                          f"QuantizedDense({fused.fused})")
        q, scales = _per_channel_quantize(fused._weight, bits)
        self.qweight = q
        self.weight_scale = scales
        # Integer matmul in float64 is exact, so unlike the float path
        # no row-at-a-time loop is needed for batch bit-identity: every
        # summation order yields the same integer.
        self._wt = np.ascontiguousarray(q.T.astype(np.float64))
        self._bias = None if fused._bias is None else fused._bias.copy()

    def __call__(self, q_x: np.ndarray, x_scales: np.ndarray,
                 arena: BufferArena,
                 stats: Optional[Dict[str, Dict[str, float]]] = None,
                 name: str = "") -> Tuple[np.ndarray, np.ndarray]:
        flat = q_x.reshape(q_x.shape[0], -1)
        if flat.shape[1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} features, got {flat.shape[1]}")
        acc = arena.acquire((flat.shape[0], self.out_features), _F64)
        np.matmul(flat, self._wt, out=acc)
        return self._requantize(acc, None, x_scales, arena, stats, name)


class QuantizedMaxPool:
    """Max pooling directly on integer levels (scale-preserving, exact).

    Max commutes with the (positive) per-sample scale, so no
    requantization happens; padding uses the dtype minimum so a padded
    window can never beat a negative activation.
    """

    def __init__(self, kernel_size: Tuple[int, int],
                 stride: Tuple[int, int], padding: Tuple[int, int],
                 relu: bool = False) -> None:
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.relu = relu
        self.fused = "maxpool" + ("+relu" if relu else "") + "+int"

    def __call__(self, q_x: np.ndarray, x_scales: np.ndarray,
                 arena: BufferArena,
                 stats: Optional[Dict[str, Dict[str, float]]] = None,
                 name: str = "") -> Tuple[np.ndarray, np.ndarray]:
        n, c, h, w = q_x.shape
        out_h, out_w = conv_output_plane(h, w, self.kernel_size,
                                         self.stride, self.padding)
        windows = sliding_windows(
            q_x, self.kernel_size, self.stride, self.padding,
            pad_value=int(np.iinfo(q_x.dtype).min))
        out = arena.acquire((n, c, out_h, out_w), q_x.dtype)
        np.max(windows, axis=(2, 3), out=out)
        if self.relu:
            np.maximum(out, 0, out=out)
        return out, x_scales


class QuantizedReLU:
    """Standalone ReLU on integer levels (exact: scale is positive)."""

    fused = "relu+int"
    relu = True

    def __call__(self, q_x: np.ndarray, x_scales: np.ndarray,
                 arena: BufferArena,
                 stats: Optional[Dict[str, Dict[str, float]]] = None,
                 name: str = "") -> Tuple[np.ndarray, np.ndarray]:
        out = arena.acquire(q_x.shape, q_x.dtype)
        np.maximum(q_x, 0, out=out)
        return out, x_scales


class QuantizedReshape:
    """Flatten as a free view over the integer levels."""

    fused = "flatten+int"

    def __init__(self, relu: bool = False) -> None:
        self.relu = relu

    def __call__(self, q_x: np.ndarray, x_scales: np.ndarray,
                 arena: BufferArena,
                 stats: Optional[Dict[str, Dict[str, float]]] = None,
                 name: str = "") -> Tuple[np.ndarray, np.ndarray]:
        flat = q_x.reshape(q_x.shape[0], -1)
        if not self.relu:
            return flat, x_scales
        out = arena.acquire(flat.shape, flat.dtype)
        np.maximum(flat, 0, out=out)
        return out, x_scales


class QuantizedIdentity:
    """Pass-through (eval-mode Dropout / Identity activations)."""

    fused = "identity+int"
    relu = False

    def __call__(self, q_x: np.ndarray, x_scales: np.ndarray,
                 arena: BufferArena,
                 stats: Optional[Dict[str, Dict[str, float]]] = None,
                 name: str = "") -> Tuple[np.ndarray, np.ndarray]:
        return q_x, x_scales


class QuantizedInferencePlan:
    """An integer-activation twin of :class:`~repro.nn.infer.InferencePlan`.

    Built by :func:`quantize_plan` from a float plan: fused conv/dense
    steps become integer GEMMs with a requantizing epilogue, max-pool /
    ReLU / flatten run directly on the narrow integers, and anything
    else (global average pool, softmax, ...) falls back to the float
    module between a dequantize/requantize pair.  Activations stored
    between steps are int16 (int8 at ``bits<=8``), so
    ``last_peak_live_bytes`` lands near a quarter (an eighth) of the
    float64 plan's.

    Threading contract matches the float plan: one plan per thread;
    :meth:`clone` shares the immutable quantized weights and gives the
    replica a private arena.

    ``last_layer_stats`` is refreshed by each run with a per-layer dict
    (accumulator peak/bits, weight/output scales) feeding the
    experiments report.
    """

    def __init__(self, steps: List[PlanStep], input_names: Set[str],
                 bits: int, arena: Optional[BufferArena] = None) -> None:
        if not steps:
            raise ValueError("empty plan")
        if not 2 <= bits <= 16:
            raise ValueError("quantized plans support bits in [2, 16]")
        self.steps = steps
        self.input_names = input_names
        self.bits = int(bits)
        self.qmax = 2 ** (bits - 1) - 1
        self.dtype = activation_dtype(bits)
        self.arena = arena or BufferArena()
        self._releases = liveness_release_schedule(steps, input_names)
        self.last_peak_live_bytes = 0
        self.last_layer_stats: Dict[str, Dict[str, float]] = {}

    def describe(self) -> str:
        return "\n".join(step.describe() for step in self.steps)

    @property
    def fused_step_count(self) -> int:
        return sum(1 for s in self.steps if s.fused)

    def clone(self) -> "QuantizedInferencePlan":
        """A replica safe to run on another thread.

        Quantized ops are stateless at run time (per-run stats travel
        through the plan, not the op) and read-only over their weight
        arrays, so they are shared; float module fallbacks are cloned
        (they flip ``training`` around each call); the clone gets a
        fresh private arena.
        """
        steps = [
            PlanStep(s.name, s.kind, s.inputs,
                     s.op.clone() if isinstance(s.op, _ModuleStep) else s.op,
                     s.fused)
            for s in self.steps
        ]
        return QuantizedInferencePlan(steps, set(self.input_names),
                                      self.bits, BufferArena())

    # -- execution ---------------------------------------------------------

    def run(self, x: np.ndarray) -> np.ndarray:
        """Quantize the float input per sample and run the integer plan."""
        q, scales = quantize_batch(x, self.bits)
        return self.run_quantized(q, scales)

    def run_quantized(self, q: np.ndarray,
                      scales: np.ndarray) -> np.ndarray:
        """Run on pre-quantized input (e.g. straight off a serving ring).

        ``q`` must hold :func:`quantize_batch` levels for this plan's
        ``bits`` and ``scales`` the matching per-sample scales.
        Returns the dequantized float64 output.
        """
        values: Dict[str, np.ndarray] = {}
        vscales: Dict[str, Optional[np.ndarray]] = {}
        stats: Dict[str, Dict[str, float]] = {}
        peak = 0

        def as_quantized(name: str) -> Tuple[np.ndarray, np.ndarray]:
            if vscales[name] is None:
                return quantize_batch(values[name], self.bits)
            return values[name], vscales[name]

        def as_float(name: str) -> np.ndarray:
            if vscales[name] is None:
                return values[name]
            return dequantize_batch(values[name], vscales[name])

        with no_grad():
            for i, step in enumerate(self.steps):
                if step.kind == "input":
                    values[step.name] = q
                    vscales[step.name] = scales
                elif step.kind == "concat":
                    parts = [as_quantized(n) for n in step.inputs]
                    values[step.name], vscales[step.name] = (
                        self._concat(parts))
                elif step.kind == "add":
                    total = as_float(step.inputs[0]).copy()
                    for n in step.inputs[1:]:
                        total += as_float(n)
                    q_t, s_t = quantize_batch(total, self.bits)
                    values[step.name] = q_t
                    vscales[step.name] = s_t
                elif step.kind == "module":
                    values[step.name] = step.op(as_float(step.inputs[0]))
                    vscales[step.name] = None
                else:  # quantized op
                    q_in, s_in = as_quantized(step.inputs[0])
                    q_out, s_out = step.op(q_in, s_in, self.arena,
                                           stats, step.name)
                    values[step.name] = q_out
                    vscales[step.name] = s_out
                peak = max(peak, sum(v.nbytes for v in values.values()))
                release_dead(values, self._releases[i], self.arena)
                for dead in self._releases[i]:
                    vscales.pop(dead, None)
        self.last_peak_live_bytes = peak
        self.last_layer_stats = stats
        return as_float(self.steps[-1].name)

    __call__ = run

    def _concat(self, parts: Sequence[Tuple[np.ndarray, np.ndarray]]
                ) -> Tuple[np.ndarray, np.ndarray]:
        """Channel concat with per-sample rescale onto a common scale.

        The joint scale is the per-sample max of the branch scales, so
        every branch's levels shrink (or stay) — no clipping possible.
        """
        n = parts[0][0].shape[0]
        shape = list(parts[0][0].shape)
        shape[1] = sum(p[0].shape[1] for p in parts)
        out = self.arena.acquire(tuple(shape), self.dtype)
        joint = np.stack([p[1] for p in parts], axis=0).max(axis=0)
        offset = 0
        extra = (1,) * (len(shape) - 1)
        for q_p, s_p in parts:
            ratio = (s_p / joint).reshape((n,) + extra)
            chunk = np.round(q_p * ratio)
            np.copyto(out[:, offset:offset + q_p.shape[1]], chunk,
                      casting="unsafe")
            offset += q_p.shape[1]
        return out, joint


def quantize_plan(plan: InferencePlan, bits: int = 16,
                  arena: Optional[BufferArena] = None
                  ) -> QuantizedInferencePlan:
    """Lower a float :class:`InferencePlan` to integer execution.

    The plan's fused conv steps already hold BatchNorm-folded weights,
    so per-channel quantization here is exactly "fold the BN scale into
    the requantization multiplier".  Quantization is deterministic: the
    same float plan always lowers to the same integer plan (process
    serving workers rely on this to rebuild identical plans from the
    shared float weights).
    """
    if not 2 <= bits <= 16:
        raise ValueError("quantized plans support bits in [2, 16]")
    steps: List[PlanStep] = []
    for step in plan.steps:
        if step.kind in ("input", "concat", "add"):
            steps.append(PlanStep(step.name, step.kind, step.inputs))
        elif step.kind == "fused_conv":
            op = QuantizedConv2D(step.op, bits)
            steps.append(PlanStep(step.name, "qconv", step.inputs, op,
                                  op.fused))
        elif step.kind == "fused_dense":
            op = QuantizedDense(step.op, bits)
            steps.append(PlanStep(step.name, "qdense", step.inputs, op,
                                  op.fused))
        else:
            steps.append(_quantize_module_step(step))
    return QuantizedInferencePlan(steps, set(plan.input_names), bits, arena)


def _quantize_module_step(step: PlanStep) -> PlanStep:
    """Map a module fallback step to an integer op where exact."""
    module = step.op.module
    activation = step.op.activation
    relu = isinstance(activation, layers.ReLU)
    passthrough = activation is None or relu
    if isinstance(module, layers.MaxPool2D) and passthrough:
        op = QuantizedMaxPool(module.kernel_size, module.stride,
                              module.padding, relu)
        return PlanStep(step.name, "qop", step.inputs, op, op.fused)
    if isinstance(module, layers.Flatten) and passthrough:
        op = QuantizedReshape(relu)
        return PlanStep(step.name, "qop", step.inputs, op, op.fused)
    if isinstance(module, layers.ReLU) and activation is None:
        op = QuantizedReLU()
        return PlanStep(step.name, "qop", step.inputs, op, op.fused)
    if isinstance(module, (layers.Dropout, Identity)) and activation is None:
        op = QuantizedIdentity()
        return PlanStep(step.name, "qop", step.inputs, op, op.fused)
    # Anything else (global/average pool, softmax, ...) runs the float
    # module between a dequantize/requantize pair.
    return PlanStep(step.name, "module", step.inputs, step.op.clone(),
                    step.fused)


def build_quantized_plan(net: GraphNetwork, bits: int = 16,
                         arena: Optional[BufferArena] = None
                         ) -> QuantizedInferencePlan:
    """Fuse + quantize in one call (``quantize_plan(build_inference_plan)``)."""
    return quantize_plan(build_inference_plan(net), bits, arena)
