"""Ahead-of-time compilation of an :class:`~repro.nn.infer.InferencePlan`.

:func:`compile_plan` lowers the interpreted step list into a
:class:`CompiledPlan`: one executable program per ``(model, batch_size)``
with every byte offset resolved at compile time.  The same separation of
trace-time from run-time that ``repro.accel.schedule`` applies to the
simulator (static per-layer programs) is applied here to the nn runtime:

* **Static arena** — a single flat block sized by a liveness walk over
  the step list; every activation, im2col scratch and padded-input
  buffer is a pre-sliced view at a fixed offset.  The hot path performs
  zero shape-keyed dict lookups and zero ``acquire``/``release`` calls.
* **Pre-bound kernels** — each step becomes a closure over its input
  views, weight views, and output view.  Padded inputs live in
  recycled regions whose zero/-inf borders are refilled per run;
  ``as_strided`` window views over them are built once at bind time.
* **Kernel specialization** — pointwise (1x1/s1/p0) convolutions skip
  the im2col gather entirely (the GEMM reads a reshaped view of the
  input), depthwise convolutions run ``einsum`` straight into their
  output view, and ``MaxPool2D`` lowers to a tap-loop of ``np.maximum``
  over the window view (bit-identical: max is an exact reduction).
* **Join write-through** — a convolution or pooling step whose only
  consumer is a ``concat`` writes directly into its channel slice of
  the concat buffer; the copy in ``concat_channels`` disappears.  The
  first branch of an ``add`` writes into the sum buffer likewise.
* **Optional branch parallelism** — independent chains feeding a join
  (fire-module expands, bottleneck shortcuts) can run on a small
  thread pool; numpy releases the GIL inside BLAS/einsum kernels.

Numerics: every specialized kernel performs the same floating-point
operations in the same order as the interpreted plan, so outputs are
bit-identical in practice and always within the 1e-12 equivalence bar
enforced by the test suite.

Thread safety: a :class:`CompiledPlan` may be shared across threads —
each thread binds its own static-arena block on first use (the program
metadata and weight views are immutable).  Fallback runs through the
interpreted plan under a lock.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro import obs
from repro.nn import layers
from repro.nn.functional import conv_output_plane
from repro.nn.infer import (
    FusedConv2D,
    FusedDense,
    InferencePlan,
    _ModuleStep,
)
from repro.nn.module import Identity, no_grad

__all__ = ["CompiledPlan", "CompiledProgram", "CompiledQuantizedPlan",
           "compile_plan", "compile_quantized_plan"]

#: Static-arena offsets are aligned so every float64 view is at least
#: cache-line aligned, matching the shm weight packing discipline.
ALIGN = 64

_F64 = np.dtype(np.float64)


def _align(nbytes: int) -> int:
    return (nbytes + ALIGN - 1) // ALIGN * ALIGN


# -- static allocator --------------------------------------------------------


class _StaticAllocator:
    """First-fit free-hole allocator producing deterministic offsets.

    Drives the compile-time layout: buffers are allocated at their step
    of first use and their bytes return to the hole list at their last
    use, so the block's high-water mark tracks the widest liveness cut
    (same objective as the interpreted planner's arena, but resolved
    once instead of per run).
    """

    def __init__(self) -> None:
        self._holes: List[List[int]] = []  # sorted [offset, nbytes]
        self.high_water = 0

    def alloc(self, nbytes: int) -> int:
        nbytes = _align(max(nbytes, 1))
        for hole in self._holes:
            if hole[1] >= nbytes:
                offset = hole[0]
                hole[0] += nbytes
                hole[1] -= nbytes
                if hole[1] == 0:
                    self._holes.remove(hole)
                return offset
        offset = self.high_water
        self.high_water += nbytes
        return offset

    def free(self, offset: int, nbytes: int) -> None:
        nbytes = _align(max(nbytes, 1))
        self._holes.append([offset, nbytes])
        self._holes.sort()
        merged: List[List[int]] = []
        for hole in self._holes:
            if merged and merged[-1][0] + merged[-1][1] == hole[0]:
                merged[-1][1] += hole[1]
            else:
                merged.append(hole)
        # A hole touching the high-water mark shrinks the block.
        if merged and merged[-1][0] + merged[-1][1] == self.high_water:
            self.high_water = merged[-1][0]
            merged.pop()
        self._holes = merged


# -- compile-time IR ---------------------------------------------------------


@dataclass
class _Buf:
    """One region of the static arena.

    ``dtype`` sizes the region: the float program allocates everything
    as float64, the quantized program stores activations/scratch as
    int16 (int8 at ``bits<=8``) so its pre-resolved layout lands ~4x
    (8x) smaller.
    """

    shape: Tuple[int, ...]
    alloc_at: int
    free_at: int
    offset: int = -1
    dtype: np.dtype = _F64

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * self.dtype.itemsize


@dataclass
class _Value:
    """Where a step's output lives.

    ``mode`` is one of ``static`` (a whole buffer), ``slice`` (a channel
    slice of a join buffer), ``alias`` (a reshape view of another
    step's value) or ``dynamic`` (a module output held in a run-time
    slot).
    """

    mode: str
    shape: Tuple[int, ...]
    buf: int = -1
    channels: Tuple[int, int] = (0, 0)
    base: int = -1  # alias: producer step index


@dataclass
class _StepIR:
    """Compile-time record for one plan step."""

    index: int
    name: str
    kind: str  # input | conv | dense | maxpool | concat | add | alias | module
    label: str
    inputs: Tuple[int, ...]  # producer step indices
    value: Optional[_Value] = None
    op: object = None
    strategy: str = ""
    write_through: bool = False
    # conv/maxpool lowering details
    padded_buf: int = -1
    padded_shape: Tuple[int, ...] = ()
    scratch_buf: int = -1
    stage_buf: int = -1
    # concat: (input position, channel range) for inputs needing a copy
    copy_slices: Tuple[Tuple[int, Tuple[int, int]], ...] = ()
    # add: input position that already wrote into the output buffer
    inplace_src: int = -1
    module: Optional[_ModuleStep] = None

    def describe(self) -> str:
        tag = self.label + (f"[{self.strategy}]" if self.strategy else "")
        if self.write_through:
            tag += "->join"
        return f"{self.name:<24} {tag}"


@dataclass
class _Group:
    """A parallel group: independent chains between a fork and a join."""

    lo: int
    hi: int
    chains: Tuple[Tuple[int, ...], ...]


# -- compiled program (one batch size) ---------------------------------------


class _BoundProgram:
    """A program bound to one thread's static-arena block."""

    __slots__ = ("block", "ops", "names", "labels", "schedule", "input_views",
                 "output_fn", "pool", "batch")

    def __init__(self) -> None:
        self.pool: Optional[ThreadPoolExecutor] = None

    def execute(self, x: np.ndarray) -> np.ndarray:
        for view in self.input_views:
            np.copyto(view, x)
        if obs.is_enabled():
            return self._execute_traced(x)
        for item in self.schedule:
            if item.__class__ is tuple:  # parallel group: tuple of chains
                futures = [self.pool.submit(self._run_chain, chain)
                           for chain in item[1:]]
                self._run_chain(item[0])
                for f in futures:
                    f.result()
            else:
                self.ops[item]()
        return self.output_fn()

    def _run_chain(self, chain: Tuple[int, ...]) -> None:
        for idx in chain:
            self.ops[idx]()

    def _execute_traced(self, x: np.ndarray) -> np.ndarray:
        with obs.span("infer.compiled", batch=self.batch,
                      steps=len(self.ops)):
            for item in self.schedule:
                if item.__class__ is tuple:
                    with obs.span("infer.compiled_step", step="parallel-group",
                                  kind="group", chains=len(item)):
                        futures = [self.pool.submit(self._run_chain, chain)
                                   for chain in item[1:]]
                        self._run_chain(item[0])
                        for f in futures:
                            f.result()
                else:
                    with obs.span("infer.compiled_step",
                                  step=self.names[item],
                                  kind=self.labels[item]):
                        self.ops[item]()
            return self.output_fn()


class CompiledProgram:
    """Immutable compiled program for one batch size.

    Holds the step IR, buffer table and schedule; :meth:`bound` binds
    (or returns) the calling thread's block + kernel closures.  Bound
    replicas are cached per thread, so one program can serve any number
    of threads with one static arena each.
    """

    def __init__(self, steps: List[_StepIR], bufs: List[_Buf],
                 total_bytes: int, groups: List[_Group], batch: int,
                 input_shape: Tuple[int, int, int],
                 parallel_workers: int) -> None:
        self._steps = steps
        self._bufs = bufs
        self.total_bytes = total_bytes
        self._groups = groups
        self.batch = batch
        self.input_shape = input_shape
        self._parallel_workers = parallel_workers
        self._local = threading.local()
        self._bind_lock = threading.Lock()
        self._replicas = 0

    # -- introspection -------------------------------------------------------

    def describe(self) -> str:
        lines = [step.describe() for step in self._steps]
        for g in self._groups:
            chains = " | ".join(
                "+".join(self._steps[i].name for i in chain)
                for chain in g.chains)
            lines.append(f"{'<parallel>':<24} {chains}")
        return "\n".join(lines)

    @property
    def strategies(self) -> Dict[str, str]:
        return {s.name: s.strategy + ("->join" if s.write_through else "")
                for s in self._steps}

    @property
    def parallel_groups(self) -> int:
        return len(self._groups)

    @property
    def bound_replicas(self) -> int:
        return self._replicas

    # -- binding -------------------------------------------------------------

    def bound(self) -> _BoundProgram:
        prog = getattr(self._local, "bound", None)
        if prog is None:
            prog = self._bind()
            self._local.bound = prog
            with self._bind_lock:
                self._replicas += 1
            obs.count("infer.compiled.bind")
            obs.gauge("infer.compiled.arena_bytes", self.total_bytes)
        return prog

    def _bind(self) -> _BoundProgram:
        block = np.empty(max(self.total_bytes, ALIGN), dtype=np.uint8)
        views: List[Optional[np.ndarray]] = []
        for buf in self._bufs:
            raw = block[buf.offset:buf.offset + buf.nbytes]
            views.append(raw.view(buf.dtype).reshape(buf.shape))
        slots: List[Optional[np.ndarray]] = [None] * len(self._steps)

        def static_view(idx: int) -> Optional[np.ndarray]:
            value = self._steps[idx].value
            if value.mode == "static":
                return views[value.buf]
            if value.mode == "slice":
                c0, c1 = value.channels
                return views[value.buf][:, c0:c1]
            if value.mode == "alias":
                base = static_view(value.base)
                if base is None:
                    return None
                view = base.reshape(value.shape)
                if not np.shares_memory(view, base):  # pragma: no cover
                    return None
                return view
            return None

        def getter(idx: int) -> Callable[[], np.ndarray]:
            sv = static_view(idx)
            if sv is not None:
                return lambda: sv
            value = self._steps[idx].value
            if value.mode == "alias":
                inner = getter(value.base)
                shape = value.shape
                return lambda: inner().reshape(shape)
            return lambda: slots[idx]

        prog = _BoundProgram()
        ops: List[Callable[[], None]] = []
        names: List[str] = []
        labels: List[str] = []
        for step in self._steps:
            ops.append(self._bind_step(step, views, static_view, getter,
                                       slots))
            names.append(step.name)
            labels.append(step.label + (f"[{step.strategy}]"
                                        if step.strategy else ""))
        prog.block = block
        prog.ops = ops
        prog.names = names
        prog.labels = labels
        prog.batch = self.batch
        prog.input_views = [views[s.value.buf] for s in self._steps
                            if s.kind == "input"]
        prog.schedule = self._build_schedule()
        if self._groups:
            prog.pool = ThreadPoolExecutor(
                max_workers=self._parallel_workers,
                thread_name_prefix="repro-compiled")
        out_idx = len(self._steps) - 1
        out_static = static_view(out_idx)
        if out_static is not None:
            prog.output_fn = out_static.copy
        else:
            out_get = getter(out_idx)

            def output_fn() -> np.ndarray:
                out = out_get()
                root = out
                while isinstance(root.base, np.ndarray):
                    root = root.base
                if root is block or (root.base is not None
                                     and root.base is block):
                    return out.copy()
                return out

            prog.output_fn = output_fn
        return prog

    def _build_schedule(self) -> List[object]:
        schedule: List[object] = []
        grouped: Dict[int, _Group] = {g.lo: g for g in self._groups}
        skip: Set[int] = set()
        for g in self._groups:
            for chain in g.chains:
                skip.update(chain)
        i = 0
        n = len(self._steps)
        while i < n:
            g = grouped.get(i)
            if g is not None:
                schedule.append(tuple(tuple(c) for c in g.chains))
                i = g.hi + 1
                continue
            if i not in skip and self._steps[i].kind != "input":
                schedule.append(i)
            i += 1
        return schedule

    # -- per-step kernel binding --------------------------------------------

    def _bind_step(self, step: _StepIR, views, static_view, getter,
                   slots) -> Callable[[], None]:
        noop = _noop
        if step.kind in ("input", "alias"):
            return noop
        if step.kind == "conv":
            return self._bind_conv(step, views, static_view, getter)
        if step.kind == "maxpool":
            return self._bind_maxpool(step, views, static_view, getter)
        if step.kind == "dense":
            return self._bind_dense(step, static_view, getter)
        if step.kind == "concat":
            out = static_view(step.index)
            copies = [(getter(step.inputs[pos]), out[:, c0:c1])
                      for pos, (c0, c1) in step.copy_slices]

            def run_concat() -> None:
                for get, dst in copies:
                    np.copyto(dst, get())

            return run_concat
        if step.kind == "add":
            out = static_view(step.index)
            srcs = [getter(i) for i in step.inputs]
            if step.inplace_src >= 0:
                rest = [s for pos, s in enumerate(srcs)
                        if pos != step.inplace_src]

                def run_add_inplace() -> None:
                    for s in rest:
                        np.add(out, s(), out=out)

                return run_add_inplace
            first, second = srcs[0], srcs[1]
            rest = srcs[2:]

            def run_add() -> None:
                np.add(first(), second(), out=out)
                for s in rest:
                    np.add(out, s(), out=out)

            return run_add
        # module fallback
        get_in = getter(step.inputs[0])
        module = step.module
        idx = step.index

        def run_module() -> None:
            slots[idx] = module(get_in())

        return run_module

    def _conv_input(self, step: _StepIR, views, static_view, getter):
        """(input view, per-run stage copy or None) for conv/maxpool."""
        if step.stage_buf >= 0:
            stage = views[step.stage_buf]
            get_in = getter(step.inputs[0])

            def stage_copy() -> None:
                np.copyto(stage, get_in())

            return stage, stage_copy
        return static_view(step.inputs[0]), None

    @staticmethod
    def _padded(views, step: _StepIR, in_view: np.ndarray,
                pad_value: float):
        """(window source, per-run border fill + interior copy)."""
        padded = views[step.padded_buf]
        ph = (step.padded_shape[2] - in_view.shape[2]) // 2
        pw = (step.padded_shape[3] - in_view.shape[3]) // 2
        interior = padded[:, :, ph:padded.shape[2] - ph,
                          pw:padded.shape[3] - pw]
        borders = []
        if ph:
            borders.append(padded[:, :, :ph, :])
            borders.append(padded[:, :, padded.shape[2] - ph:, :])
        if pw:
            borders.append(padded[:, :, ph:padded.shape[2] - ph, :pw])
            borders.append(
                padded[:, :, ph:padded.shape[2] - ph,
                       padded.shape[3] - pw:])

        def refill() -> None:
            for b in borders:
                b.fill(pad_value)
            np.copyto(interior, in_view)

        return padded, refill

    @staticmethod
    def _windows(src: np.ndarray, kernel, stride, out_plane) -> np.ndarray:
        kh, kw = kernel
        sh, sw = stride
        oh, ow = out_plane
        n, c = src.shape[:2]
        shape = (n, c, kh, kw, oh, ow)
        strides = (src.strides[0], src.strides[1], src.strides[2],
                   src.strides[3], src.strides[2] * sh, src.strides[3] * sw)
        return np.lib.stride_tricks.as_strided(src, shape=shape,
                                               strides=strides)

    def _bind_conv(self, step: _StepIR, views, static_view, getter):
        op: FusedConv2D = step.op
        out4 = static_view(step.index)
        n = out4.shape[0]
        g = op.groups
        oh, ow = out4.shape[2], out4.shape[3]
        relu = op.relu
        in_view, stage_copy = self._conv_input(step, views, static_view,
                                               getter)
        prologue = stage_copy
        if step.padded_buf >= 0:
            src, refill = self._padded(views, step, in_view, 0.0)
            prologue = _chain(prologue, refill)
        else:
            src = in_view
        gemm_out = out4.reshape(n, g, op._cout_g, oh * ow)
        wmat = op._wmat[None]
        bias4 = (op._bias.reshape(1, g, op._cout_g, 1)
                 if op._bias is not None else None)
        if step.strategy == "pointwise":
            cols = src.reshape(n, g, op._cin_g, oh * ow)
            if not np.shares_memory(cols, src):  # pragma: no cover
                raise AssertionError("pointwise view must not copy")
            del src

            def run_pw() -> None:
                if prologue is not None:
                    prologue()
                np.matmul(wmat, cols, out=gemm_out)
                if bias4 is not None:
                    np.add(gemm_out, bias4, out=gemm_out)
                if relu:
                    np.maximum(gemm_out, 0.0, out=gemm_out)

            return run_pw
        # general im2col GEMM through the static scratch buffer
        scratch = views[step.scratch_buf]
        win = self._windows(src, op.kernel_size, op.stride, (oh, ow))
        kh, kw = op.kernel_size
        cols = scratch.reshape(n, g, op._cin_g * kh * kw, oh * ow)

        def run_gemm() -> None:
            if prologue is not None:
                prologue()
            np.copyto(scratch, win)
            np.matmul(wmat, cols, out=gemm_out)
            if bias4 is not None:
                np.add(gemm_out, bias4, out=gemm_out)
            if relu:
                np.maximum(gemm_out, 0.0, out=gemm_out)

        return run_gemm

    def _bind_maxpool(self, step: _StepIR, views, static_view, getter):
        pool: layers.MaxPool2D = step.op
        out = static_view(step.index)
        oh, ow = out.shape[2], out.shape[3]
        in_view, stage_copy = self._conv_input(step, views, static_view,
                                               getter)
        prologue = stage_copy
        if step.padded_buf >= 0:
            src, refill = self._padded(views, step, in_view, -np.inf)
            prologue = _chain(prologue, refill)
        else:
            src = in_view
        win = self._windows(src, pool.kernel_size, pool.stride, (oh, ow))
        kh, kw = pool.kernel_size
        taps = [win[:, :, i, j] for i in range(kh) for j in range(kw)]
        first, rest = taps[0], taps[1:]
        relu = step.strategy.endswith("+relu")

        def run_pool() -> None:
            if prologue is not None:
                prologue()
            np.copyto(out, first)
            for tap in rest:
                np.maximum(out, tap, out=out)
            if relu:
                np.maximum(out, 0.0, out=out)

        return run_pool

    def _bind_dense(self, step: _StepIR, static_view, getter):
        op: FusedDense = step.op
        out = static_view(step.index)
        weight_t = op._weight.T
        bias = op._bias
        relu = op.relu
        batch = out.shape[0]
        in_features = op.in_features
        flat_static = static_view(step.inputs[0])
        if flat_static is not None:
            flat = flat_static.reshape(batch, in_features)
            if not np.shares_memory(flat, flat_static):
                flat_static = None  # reshape copied: bind dynamically
        if flat_static is not None:
            rows = [(flat[r], out[r]) for r in range(batch)]

            def run_dense_static() -> None:
                for src, dst in rows:
                    np.matmul(src, weight_t, out=dst)
                if bias is not None:
                    np.add(out, bias, out=out)
                if relu:
                    np.maximum(out, 0.0, out=out)

            return run_dense_static
        get_in = getter(step.inputs[0])

        def run_dense() -> None:
            flat = get_in().reshape(batch, -1)
            for r in range(batch):
                np.matmul(flat[r], weight_t, out=out[r])
            if bias is not None:
                np.add(out, bias, out=out)
            if relu:
                np.maximum(out, 0.0, out=out)

        return run_dense


def _noop() -> None:
    return None


def _chain(a: Optional[Callable[[], None]],
           b: Callable[[], None]) -> Callable[[], None]:
    if a is None:
        return b

    def both() -> None:
        a()
        b()

    return both


# -- the compile pass --------------------------------------------------------


def _classify(plan: InferencePlan) -> List[_StepIR]:
    """Pass 0: map plan steps to compile-time kinds (no shapes yet)."""
    index_of = {step.name: i for i, step in enumerate(plan.steps)}
    irs: List[_StepIR] = []
    for i, step in enumerate(plan.steps):
        inputs = tuple(index_of[name] for name in step.inputs)
        kind = step.kind
        label = step.fused or step.kind
        op = step.op
        module: Optional[_ModuleStep] = None
        if kind == "fused_conv":
            kind = "conv"
        elif kind == "fused_dense":
            kind = "dense"
        elif kind == "module":
            mod_step: _ModuleStep = op
            activation = mod_step.activation
            plain = activation is None or isinstance(activation, Identity)
            relu = isinstance(activation, layers.ReLU)
            if isinstance(mod_step.module, layers.MaxPool2D) and (
                    plain or relu):
                kind = "maxpool"
                op = mod_step.module
                label = "maxpool" + ("+relu" if relu else "")
            elif plain and isinstance(
                    mod_step.module, (layers.Flatten, layers.Dropout,
                                      Identity)):
                kind = "alias"
                label = f"alias[{type(mod_step.module).__name__.lower()}]"
            else:
                module = mod_step.clone()
                label = f"module[{type(mod_step.module).__name__}]"
        irs.append(_StepIR(index=i, name=step.name, kind=kind, label=label,
                           inputs=inputs, op=op, module=module))
    return irs


def _consumers(irs: List[_StepIR]) -> List[List[int]]:
    consumers: List[List[int]] = [[] for _ in irs]
    for ir in irs:
        for src in ir.inputs:
            consumers[src].append(ir.index)
    return consumers


def _conv_out_shape(op: FusedConv2D, in_shape: Tuple[int, ...]
                    ) -> Tuple[int, ...]:
    n, _, h, w = in_shape
    oh, ow = conv_output_plane(h, w, op.kernel_size, op.stride, op.padding)
    return (n, op.out_channels, oh, ow)


def _pool_out_shape(pool, in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
    n, c, h, w = in_shape
    oh, ow = conv_output_plane(h, w, pool.kernel_size, pool.stride,
                               pool.padding)
    return (n, c, oh, ow)


def _module_out_shape(module: _ModuleStep,
                      in_shape: Tuple[int, ...]) -> Tuple[int, ...]:
    with no_grad():
        out = module(np.zeros(in_shape, dtype=np.float64))
    return tuple(out.shape)


def _detect_groups(irs: List[_StepIR],
                   consumers: List[List[int]]) -> List[_Group]:
    """Find fork→join regions whose branches can run concurrently."""
    groups: List[_Group] = []
    claimed: Set[int] = set()
    runnable = {"conv", "dense", "maxpool", "module", "alias"}
    for ir in irs:
        if ir.kind not in ("concat", "add") or len(set(ir.inputs)) < 2:
            continue
        chains: List[List[int]] = []
        used: Set[int] = set()
        for src in dict.fromkeys(ir.inputs):
            chain: List[int] = []
            cur = src
            while (irs[cur].kind in runnable
                   and len(irs[cur].inputs) == 1
                   and consumers[cur] == ([ir.index] if not chain
                                          else [chain[-1]])
                   and cur not in claimed and cur not in used):
                chain.append(cur)
                cur = irs[cur].inputs[0]
            chain.reverse()
            if chain:
                chains.append(chain)
                used.update(chain)
        if sum(1 for c in chains if c) < 2:
            continue
        members = sorted(used)
        lo, hi = members[0], members[-1]
        if members != list(range(lo, hi + 1)):
            continue  # interleaved non-chain steps: stay sequential
        # Every chain step may only depend on its own chain or on steps
        # strictly before the group.
        safe = True
        for chain in chains:
            for idx in chain:
                for src in irs[idx].inputs:
                    if src >= lo and src not in chain:
                        safe = False
        if not safe:
            continue
        groups.append(_Group(lo=lo, hi=hi,
                             chains=tuple(tuple(c) for c in chains)))
        claimed.update(used)
    return groups


def _compile_program(plan: InferencePlan, batch: int,
                     input_shape: Tuple[int, int, int],
                     parallel: Union[bool, int]) -> CompiledProgram:
    irs = _classify(plan)
    consumers = _consumers(irs)
    n_steps = len(irs)
    out_idx = n_steps - 1
    bufs: List[_Buf] = []
    last_use: List[int] = [ir.index for ir in irs]
    for ir in irs:
        for src in ir.inputs:
            last_use[src] = max(last_use[src], ir.index)

    def new_buf(shape: Tuple[int, ...], alloc_at: int,
                free_at: int) -> int:
        bufs.append(_Buf(shape=tuple(int(d) for d in shape),
                         alloc_at=alloc_at, free_at=free_at))
        return len(bufs) - 1

    # Write-through joins: a conv/maxpool whose sole consumer is the
    # join writes straight into its slice of the join buffer.  The join
    # buffer must therefore exist from the first producer onwards.
    wt_targets: Dict[int, int] = {}  # producer index -> join index
    for ir in irs:
        if ir.kind == "concat":
            for src in ir.inputs:
                if (irs[src].kind in ("conv", "maxpool")
                        and consumers[src] == [ir.index]
                        and src != out_idx):
                    wt_targets[src] = ir.index
        elif ir.kind == "add":
            for src in ir.inputs[:2]:
                if (irs[src].kind == "conv"
                        and consumers[src] == [ir.index]
                        and src != out_idx
                        and ir.inputs.count(src) == 1):
                    wt_targets[src] = ir.index
                    break

    groups = _detect_groups(irs, consumers) if parallel else []
    group_of: Dict[int, _Group] = {}
    for g in groups:
        for chain in g.chains:
            for idx in chain:
                group_of[idx] = g

    def lifetime(idx: int, alloc_at: int) -> Tuple[int, int]:
        """Buffer lifetime for step idx's value, group-adjusted."""
        free_at = n_steps if idx == out_idx else last_use[idx]
        # Aliases keep their base alive: extend through alias consumers.
        stack = [c for c in consumers[idx] if irs[c].kind == "alias"]
        while stack:
            a = stack.pop()
            free_at = max(free_at, n_steps if a == out_idx else last_use[a])
            stack.extend(c for c in consumers[a] if irs[c].kind == "alias")
        # Module steps may return views of their input: keep the input
        # buffer alive while the module's own value is.
        for c in consumers[idx]:
            if irs[c].kind == "module":
                free_at = max(free_at,
                              n_steps if c == out_idx else last_use[c])
        g = group_of.get(idx)
        if g is not None:
            alloc_at = min(alloc_at, g.lo)
            free_at = max(free_at, g.hi)
        return alloc_at, free_at

    def transient(idx: int, shape: Tuple[int, ...]) -> int:
        g = group_of.get(idx)
        lo = g.lo if g is not None else idx
        hi = g.hi if g is not None else idx
        return new_buf(shape, lo, hi)

    # Join buffers for write-through targets, created up front so
    # producers can reference them.  Channel offsets follow input order.
    join_bufs: Dict[int, int] = {}
    join_channels: Dict[int, Dict[int, Tuple[int, int]]] = {}

    # Pass 1: shapes, values, transients.
    shapes: List[Tuple[int, ...]] = [()] * n_steps
    for ir in irs:
        i = ir.index
        if ir.kind == "input":
            shape = (batch,) + tuple(input_shape)
            alloc_at, free_at = lifetime(i, i)
            buf = new_buf(shape, alloc_at, free_at)
            ir.value = _Value("static", shape, buf=buf)
            shapes[i] = shape
            continue
        in_shape = shapes[ir.inputs[0]] if ir.inputs else ()
        in_value = irs[ir.inputs[0]].value if ir.inputs else None

        def resolve_dynamic(value: _Value) -> bool:
            while value.mode == "alias":
                value = irs[value.base].value
            return value.mode == "dynamic"

        if ir.kind == "conv":
            op: FusedConv2D = ir.op
            shape = _conv_out_shape(op, in_shape)
            kh, kw = op.kernel_size
            ph, pw = op.padding
            if (kh, kw) == (1, 1) and op.stride == (1, 1) \
                    and (ph, pw) == (0, 0):
                ir.strategy = "pointwise"
            elif op.depthwise:
                # Depthwise lowers to the same im2col GEMM as a grouped
                # conv (cin_g == 1): with the gather hitting a static
                # scratch buffer, batched BLAS beats the interpreted
                # einsum ~2x at identical accumulation order per output.
                ir.strategy = "dw-gemm"
            else:
                ir.strategy = "gemm"
            if resolve_dynamic(in_value):
                ir.stage_buf = transient(i, in_shape)
            if (ph, pw) != (0, 0):
                ir.padded_shape = (in_shape[0], in_shape[1],
                                  in_shape[2] + 2 * ph, in_shape[3] + 2 * pw)
                ir.padded_buf = transient(i, ir.padded_shape)
            if ir.strategy != "pointwise":
                ir.scratch_buf = transient(
                    i, (shape[0], in_shape[1], kh, kw, shape[2], shape[3]))
        elif ir.kind == "maxpool":
            pool = ir.op
            shape = _pool_out_shape(pool, in_shape)
            ir.strategy = "taps" + ("+relu" if ir.label.endswith("+relu")
                                    else "")
            if resolve_dynamic(in_value):
                ir.stage_buf = transient(i, in_shape)
            ph, pw = pool.padding
            if (ph, pw) != (0, 0):
                ir.padded_shape = (in_shape[0], in_shape[1],
                                  in_shape[2] + 2 * ph, in_shape[3] + 2 * pw)
                ir.padded_buf = transient(i, ir.padded_shape)
        elif ir.kind == "dense":
            op = ir.op
            shape = (batch, op.out_features)
            ir.strategy = "prebound"
        elif ir.kind == "concat":
            channels = [shapes[s][1] for s in ir.inputs]
            shape = (in_shape[0], sum(channels)) + tuple(in_shape[2:])
            offsets = np.concatenate([[0], np.cumsum(channels)])
            ranges = [(int(offsets[p]), int(offsets[p + 1]))
                      for p in range(len(ir.inputs))]
            wt_positions = {pos for pos, src in enumerate(ir.inputs)
                            if wt_targets.get(src) == i}
            ir.copy_slices = tuple(
                (pos, ranges[pos]) for pos in range(len(ir.inputs))
                if pos not in wt_positions)
            ir.strategy = (f"write-through:{len(wt_positions)}/"
                           f"{len(ir.inputs)}" if wt_positions else "copy")
            join_channels[i] = {ir.inputs[pos]: ranges[pos]
                                for pos in wt_positions}
        elif ir.kind == "add":
            shape = in_shape
            wt_srcs = [src for src in ir.inputs
                       if wt_targets.get(src) == i]
            if wt_srcs:
                ir.inplace_src = ir.inputs.index(wt_srcs[0])
                ir.strategy = "in-place"
                join_channels[i] = {wt_srcs[0]: (0, shape[1])}
            else:
                ir.strategy = "copy"
        elif ir.kind == "alias":
            mod = ir.op.module if isinstance(ir.op, _ModuleStep) else None
            if isinstance(mod, layers.Flatten):
                shape = (in_shape[0],
                         int(np.prod(in_shape[1:], dtype=np.int64)))
            else:
                shape = in_shape
            ir.value = _Value("alias", shape, base=ir.inputs[0])
            shapes[i] = shape
            continue
        else:  # module
            shape = _module_out_shape(ir.module, in_shape)
            ir.value = _Value("dynamic", shape)
            shapes[i] = shape
            continue

        shapes[i] = shape
        join = wt_targets.get(i)
        if join is not None:
            # Output lives inside the join's buffer; make sure that
            # buffer exists, allocated from this step onwards (or from
            # the start of the parallel group containing this step).
            g = group_of.get(i)
            start = g.lo if g is not None else i
            jbuf = join_bufs.get(join)
            if jbuf is None:
                jbuf = new_buf((0,), start, n_steps)  # placeholder
                join_bufs[join] = jbuf
            else:
                bufs[jbuf].alloc_at = min(bufs[jbuf].alloc_at, start)
            ir.value = _Value("slice", shape, buf=jbuf)
            ir.write_through = True
        else:
            jbuf = join_bufs.get(i)
            alloc_at, free_at = lifetime(i, i)
            if jbuf is not None:
                # This step IS a join with write-through producers: fix
                # up the placeholder buffer created by the first one.
                buf = bufs[jbuf]
                buf.shape = tuple(int(d) for d in shape)
                buf.free_at = free_at
                a2, _ = lifetime(i, buf.alloc_at)
                buf.alloc_at = min(buf.alloc_at, a2)
                ir.value = _Value("static", shape, buf=jbuf)
            else:
                buf = new_buf(shape, alloc_at, free_at)
                ir.value = _Value("static", shape, buf=buf)

    # Resolve write-through slice channel ranges now the joins are known.
    for ir in irs:
        if ir.write_through:
            join = wt_targets[ir.index]
            ir.value.channels = join_channels[join][ir.index]

    # Pass 2: assign offsets.
    allocator = _StaticAllocator()
    by_alloc: Dict[int, List[int]] = {}
    by_free: Dict[int, List[int]] = {}
    for bid, buf in enumerate(bufs):
        by_alloc.setdefault(buf.alloc_at, []).append(bid)
        by_free.setdefault(buf.free_at, []).append(bid)
    peak = 0
    for i in range(n_steps):
        for bid in by_alloc.get(i, ()):
            bufs[bid].offset = allocator.alloc(bufs[bid].nbytes)
        peak = max(peak, allocator.high_water)
        for bid in by_free.get(i, ()):
            allocator.free(bufs[bid].offset, bufs[bid].nbytes)

    workers = parallel if isinstance(parallel, int) and parallel > 1 else 2
    return CompiledProgram(irs, bufs, peak, groups, batch,
                           tuple(input_shape), workers)


# -- public API --------------------------------------------------------------


@dataclass
class CompiledStats:
    """Aggregate counters for one :class:`CompiledPlan`."""

    compiled_batches: Tuple[int, ...] = ()
    fallbacks: int = 0
    runs: int = 0
    arena_bytes: Dict[int, int] = field(default_factory=dict)
    bound_replicas: Dict[int, int] = field(default_factory=dict)


class CompiledPlan:
    """Batch-specialized executable programs over an interpreted plan.

    ``run`` dispatches to the program compiled for ``x.shape[0]``; any
    mismatch (batch size, input shape, dtype) transparently falls back
    to the interpreted :meth:`InferencePlan.run` (counted in
    ``fallbacks`` and the ``infer.compiled.fallback`` obs counter)
    unless ``autocompile`` is set, in which case unseen batch sizes are
    compiled on first use.

    Sharing: the compiled programs (step metadata, offsets, weight
    views) are immutable and shared by every thread and every
    :meth:`clone`; each thread binds its own static-arena block on
    first use.  The interpreted fallback plan is per-clone and guarded
    by a lock.
    """

    def __init__(self, plan: InferencePlan,
                 input_shape: Tuple[int, int, int],
                 batch_sizes: Sequence[int] = (1,), *,
                 parallel: Union[bool, int] = False,
                 autocompile: bool = False) -> None:
        if not batch_sizes and not autocompile:
            raise ValueError("need at least one batch size or autocompile")
        self._plan = plan
        self.input_shape = tuple(int(d) for d in input_shape)
        self.parallel = parallel
        self.autocompile = autocompile
        self._programs: Dict[int, CompiledProgram] = {}
        self._compile_lock = threading.Lock()
        self._fallback_lock = threading.Lock()
        self.fallbacks = 0
        self.runs = 0
        for b in batch_sizes:
            self._ensure(int(b))

    # -- compilation ---------------------------------------------------------

    def _ensure(self, batch: int) -> CompiledProgram:
        prog = self._programs.get(batch)
        if prog is None:
            with self._compile_lock:
                prog = self._programs.get(batch)
                if prog is None:
                    with obs.span("infer.compile", batch=batch,
                                  steps=len(self._plan.steps)):
                        prog = _compile_program(self._plan, batch,
                                                self.input_shape,
                                                self.parallel)
                    # Publish only once fully built.
                    programs = dict(self._programs)
                    programs[batch] = prog
                    self._programs = programs
        return prog

    @property
    def plan(self) -> InferencePlan:
        return self._plan

    @property
    def batch_sizes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._programs))

    def program(self, batch: int) -> CompiledProgram:
        """The compiled program for ``batch`` (compiling if needed)."""
        return self._ensure(int(batch))

    def describe(self, batch: Optional[int] = None) -> str:
        batch = batch if batch is not None else self.batch_sizes[0]
        return self._programs[batch].describe()

    def static_arena_bytes(self, batch: int) -> int:
        return self._programs[batch].total_bytes

    @property
    def fused_step_count(self) -> int:
        return self._plan.fused_step_count

    def stats(self) -> CompiledStats:
        return CompiledStats(
            compiled_batches=self.batch_sizes,
            fallbacks=self.fallbacks,
            runs=self.runs,
            arena_bytes={b: p.total_bytes
                         for b, p in self._programs.items()},
            bound_replicas={b: p.bound_replicas
                            for b, p in self._programs.items()},
        )

    def clone(self) -> "CompiledPlan":
        """A replica sharing the compiled programs and weights.

        The clone gets its own interpreted fallback plan (private
        arena) and its own counters; the immutable compiled programs —
        which already bind per-thread — are shared.
        """
        replica = CompiledPlan.__new__(CompiledPlan)
        replica._plan = self._plan.clone()
        replica.input_shape = self.input_shape
        replica.parallel = self.parallel
        replica.autocompile = self.autocompile
        replica._programs = self._programs
        replica._compile_lock = self._compile_lock
        replica._fallback_lock = threading.Lock()
        replica.fallbacks = 0
        replica.runs = 0
        return replica

    # -- execution -----------------------------------------------------------

    def _fallback(self, x: np.ndarray) -> np.ndarray:
        self.fallbacks += 1
        obs.count("infer.compiled.fallback")
        with self._fallback_lock:
            return self._plan.run(x)

    def run(self, x: np.ndarray) -> np.ndarray:
        self.runs += 1
        if (x.ndim != 4 or tuple(x.shape[1:]) != self.input_shape
                or x.dtype != _F64):
            return self._fallback(x)
        batch = int(x.shape[0])
        prog = self._programs.get(batch)
        if prog is None:
            if not self.autocompile:
                return self._fallback(x)
            prog = self._ensure(batch)
        return prog.bound().execute(x)

    __call__ = run


def compile_plan(plan: InferencePlan,
                 input_shape: Tuple[int, int, int],
                 batch_sizes: Sequence[int] = (1,), *,
                 parallel: Union[bool, int] = False,
                 autocompile: bool = False) -> CompiledPlan:
    """Lower an interpreted plan into batch-specialized programs.

    ``input_shape`` is the per-sample ``(C, H, W)`` shape (batch
    excluded).  ``batch_sizes`` are compiled eagerly; other batch sizes
    either fall back to the interpreted plan or — with
    ``autocompile=True`` — compile on first use.  ``parallel`` enables
    branch-parallel execution of independent fork→join chains on a
    small thread pool (pass an int for the worker count).
    """
    return CompiledPlan(plan, input_shape, batch_sizes, parallel=parallel,
                        autocompile=autocompile)


# -- quantized compilation ---------------------------------------------------
#
# The integer twin of the float compiler: a QuantizedInferencePlan
# (repro.nn.quant) lowers to batch-specialized programs whose static
# arena stores activations, padded inputs and im2col scratch in the
# plan's narrow integer dtype — the pre-resolved layout lands ~4x
# smaller at int16 (8x at int8), with only the per-conv accumulator
# regions staying float64 (exact integer containers for the BLAS GEMM).
# The requantizing epilogue is the *same code object* the interpreted
# plan runs (QuantizedConv2D.requantize_into), so compiled and
# interpreted integer outputs are bit-identical by construction.


@dataclass
class _QValue:
    """Where a quantized step's output lives."""

    shape: Tuple[int, ...]
    buf: int = -1          # static buffer index (-1 for alias)
    base: int = -1         # alias: producer step index
    quantized: bool = True
    scale_src: int = -1    # step index owning the per-sample scale array


@dataclass
class _QStepIR:
    """Compile-time record for one quantized plan step."""

    index: int
    name: str
    kind: str  # input | qconv | qdense | qmaxpool | qrelu | alias | concat | add | module
    inputs: Tuple[int, ...]
    op: object = None
    value: Optional[_QValue] = None
    padded_buf: int = -1
    padded_shape: Tuple[int, ...] = ()
    scratch_buf: int = -1
    acc_buf: int = -1
    module: Optional[_ModuleStep] = None


def _compile_qprogram(qplan, batch: int,
                      input_shape: Tuple[int, int, int]) -> "_QProgram":
    from repro.nn.quant import (
        QuantizedConv2D,
        QuantizedDense,
        QuantizedIdentity,
        QuantizedMaxPool,
        QuantizedReLU,
        QuantizedReshape,
    )

    n = batch
    steps = qplan.steps
    index = {s.name: i for i, s in enumerate(steps)}
    qdtype = np.dtype(qplan.dtype)
    allocator = _StaticAllocator()
    bufs: List[_Buf] = []
    total = 0

    def is_alias(st) -> bool:
        return st.kind == "qop" and (
            isinstance(st.op, QuantizedIdentity)
            or (isinstance(st.op, QuantizedReshape) and not st.op.relu))

    # Storage owners: an alias shares its producer's buffer, so frees
    # key off the owning step.
    owner_of: Dict[int, int] = {}
    for i, st in enumerate(steps):
        if is_alias(st):
            owner_of[i] = owner_of[index[st.inputs[0]]]
        else:
            owner_of[i] = i
    last_use: Dict[int, int] = {}
    for i, st in enumerate(steps):
        last_use[owner_of[i]] = i
        for nm in st.inputs:
            last_use[owner_of[index[nm]]] = i
    protected = owner_of[len(steps) - 1]

    def alloc_buf(shape: Tuple[int, ...], dtype: np.dtype, at: int) -> int:
        nonlocal total
        buf = _Buf(tuple(int(d) for d in shape), at, at, dtype=np.dtype(dtype))
        buf.offset = allocator.alloc(buf.nbytes)
        total = max(total, buf.offset + _align(buf.nbytes))
        bufs.append(buf)
        return len(bufs) - 1

    def free_buf(bi: int) -> None:
        allocator.free(bufs[bi].offset, bufs[bi].nbytes)

    irs: List[_QStepIR] = []
    out_buf: Dict[int, int] = {}  # owning step -> its output buffer

    for i, st in enumerate(steps):
        ir = _QStepIR(i, st.name, "", tuple(index[nm] for nm in st.inputs),
                      op=st.op)
        transients: List[int] = []
        if st.kind == "input":
            ir.kind = "input"
            shape = (n,) + tuple(int(d) for d in input_shape)
            bi = alloc_buf(shape, qdtype, i)
            ir.value = _QValue(shape, buf=bi, scale_src=i)
        elif st.kind == "qconv":
            ir.kind = "qconv"
            op = st.op
            src = irs[ir.inputs[0]].value
            in_sh = src.shape
            oh, ow = conv_output_plane(in_sh[2], in_sh[3], op.kernel_size,
                                       op.stride, op.padding)
            shape = (n, op.out_channels, oh, ow)
            ph, pw = op.padding
            # A float producer (module fallback) is quantized at run
            # time, so the integer levels need a staging buffer even
            # when the convolution itself is unpadded.
            if ph or pw or not src.quantized:
                ir.padded_shape = (n, in_sh[1], in_sh[2] + 2 * ph,
                                   in_sh[3] + 2 * pw)
                ir.padded_buf = alloc_buf(ir.padded_shape, qdtype, i)
                transients.append(ir.padded_buf)
            # Pointwise (1x1/s1/p0) convolutions read a reshaped view of
            # the input instead of a gathered scratch copy.  Exact
            # integer arithmetic is order-independent, so skipping the
            # gather cannot perturb the GEMM result — output stays
            # bit-identical to the interpreted (always-gathering) op.
            pointwise = (not op.depthwise and op.kernel_size == (1, 1)
                         and op.stride == (1, 1) and op.padding == (0, 0))
            if not op.depthwise and not pointwise:
                kh, kw = op.kernel_size
                ir.scratch_buf = alloc_buf((n, in_sh[1], kh, kw, oh, ow),
                                           qdtype, i)
                transients.append(ir.scratch_buf)
            ir.acc_buf = alloc_buf(shape, _F64, i)
            transients.append(ir.acc_buf)
            bi = alloc_buf(shape, qdtype, i)
            ir.value = _QValue(shape, buf=bi, scale_src=i)
        elif st.kind == "qdense":
            ir.kind = "qdense"
            shape = (n, st.op.out_features)
            ir.acc_buf = alloc_buf(shape, _F64, i)
            transients.append(ir.acc_buf)
            bi = alloc_buf(shape, qdtype, i)
            ir.value = _QValue(shape, buf=bi, scale_src=i)
        elif st.kind == "qop" and isinstance(st.op, QuantizedMaxPool):
            ir.kind = "qmaxpool"
            op = st.op
            src = irs[ir.inputs[0]].value
            in_sh = src.shape
            oh, ow = conv_output_plane(in_sh[2], in_sh[3], op.kernel_size,
                                       op.stride, op.padding)
            shape = (n, in_sh[1], oh, ow)
            ph, pw = op.padding
            if ph or pw or not src.quantized:
                ir.padded_shape = (n, in_sh[1], in_sh[2] + 2 * ph,
                                   in_sh[3] + 2 * pw)
                ir.padded_buf = alloc_buf(ir.padded_shape, qdtype, i)
                transients.append(ir.padded_buf)
            bi = alloc_buf(shape, qdtype, i)
            ir.value = _QValue(shape, buf=bi,
                               scale_src=src.scale_src if src.quantized
                               else i)
        elif st.kind == "qop" and isinstance(st.op, (QuantizedReLU,
                                                     QuantizedReshape)):
            src = irs[ir.inputs[0]].value
            if is_alias(st):
                ir.kind = "alias"
                shape = (n, int(np.prod(src.shape[1:], dtype=np.int64)))
                ir.value = _QValue(shape, base=ir.inputs[0],
                                   quantized=src.quantized,
                                   scale_src=src.scale_src)
            else:
                ir.kind = "qrelu"
                shape = (src.shape if isinstance(st.op, QuantizedReLU)
                         else (n, int(np.prod(src.shape[1:],
                                              dtype=np.int64))))
                bi = alloc_buf(shape, qdtype, i)
                ir.value = _QValue(shape, buf=bi,
                                   scale_src=src.scale_src if src.quantized
                                   else i)
        elif st.kind == "qop":  # QuantizedIdentity
            src = irs[ir.inputs[0]].value
            ir.kind = "alias"
            ir.value = _QValue(src.shape, base=ir.inputs[0],
                               quantized=src.quantized,
                               scale_src=src.scale_src)
        elif st.kind == "concat":
            ir.kind = "concat"
            parts = [irs[j].value.shape for j in ir.inputs]
            shape = list(parts[0])
            shape[1] = sum(p[1] for p in parts)
            shape = tuple(shape)
            bi = alloc_buf(shape, qdtype, i)
            ir.value = _QValue(shape, buf=bi, scale_src=i)
        elif st.kind == "add":
            ir.kind = "add"
            shape = irs[ir.inputs[0]].value.shape
            ir.acc_buf = alloc_buf(shape, _F64, i)
            transients.append(ir.acc_buf)
            bi = alloc_buf(shape, qdtype, i)
            ir.value = _QValue(shape, buf=bi, scale_src=i)
        else:  # float module fallback
            ir.kind = "module"
            ir.module = st.op
            probe = st.op(np.zeros((n,) + tuple(
                irs[ir.inputs[0]].value.shape[1:]), dtype=np.float64))
            shape = tuple(int(d) for d in probe.shape)
            bi = alloc_buf(shape, _F64, i)
            ir.value = _QValue(shape, buf=bi, quantized=False)
        irs.append(ir)
        if ir.value.buf >= 0:
            out_buf[i] = ir.value.buf
        # Transient regions become reusable only after the output
        # buffer was placed, so the epilogue's accumulator and its
        # destination can never overlap.
        for tb in transients:
            free_buf(tb)
        for o, last in last_use.items():
            if last == i and o != protected and o in out_buf:
                free_buf(out_buf[o])
                bufs[out_buf[o]].free_at = i

    return _QProgram(irs, bufs, total, batch,
                     tuple(int(d) for d in input_shape), qplan.bits)


class _QProgram:
    """Immutable compiled quantized program for one batch size."""

    def __init__(self, irs: List[_QStepIR], bufs: List[_Buf],
                 total_bytes: int, batch: int,
                 input_shape: Tuple[int, int, int], bits: int) -> None:
        self._irs = irs
        self._bufs = bufs
        self.total_bytes = total_bytes
        self.batch = batch
        self.input_shape = input_shape
        self.bits = bits
        self._local = threading.local()
        self._bind_lock = threading.Lock()
        self._replicas = 0

    def describe(self) -> str:
        return "\n".join(f"{ir.name:<24} {ir.kind}" for ir in self._irs)

    @property
    def bound_replicas(self) -> int:
        return self._replicas

    def bound(self) -> "_QBound":
        prog = getattr(self._local, "bound", None)
        if prog is None:
            prog = self._bind()
            self._local.bound = prog
            with self._bind_lock:
                self._replicas += 1
            obs.count("infer.qcompiled.bind")
            obs.gauge("infer.qcompiled.arena_bytes", self.total_bytes)
        return prog

    def _bind(self) -> "_QBound":
        from repro.nn.functional import sliding_windows
        from repro.nn.quant import dequantize_batch, quantize_batch

        n = self.batch
        bits = self.bits
        qmax = 2 ** (bits - 1) - 1
        block = np.empty(max(self.total_bytes, ALIGN), dtype=np.uint8)
        views = [
            block[b.offset:b.offset + b.nbytes].view(b.dtype).reshape(b.shape)
            for b in self._bufs
        ]
        vals: List[Optional[np.ndarray]] = [None] * len(self._irs)
        scales: List[Optional[np.ndarray]] = [None] * len(self._irs)
        for ir in self._irs:
            v = ir.value
            if v.buf >= 0:
                vals[ir.index] = views[v.buf]
            else:
                vals[ir.index] = vals[v.base].reshape(v.shape)
            if v.quantized:
                if v.scale_src == ir.index:
                    scales[ir.index] = np.empty(n, dtype=np.float64)
                else:
                    scales[ir.index] = scales[v.scale_src]

        def quantized_input(j: int):
            """(levels, scales) accessor for step ``j``'s output.

            Float producers (module fallbacks) are quantized afresh per
            run — the same math :meth:`QuantizedInferencePlan.run_quantized`
            applies through its ``as_quantized`` helper, so levels match
            the interpreted plan bit for bit.
            """
            xv, sx = vals[j], scales[j]
            if self._irs[j].value.quantized:
                return lambda: (xv, sx)
            return lambda: quantize_batch(xv, bits)

        ops: List[Callable[[], None]] = []
        for ir in self._irs:
            if ir.kind in ("input", "alias"):
                continue
            qv = vals[ir.index]
            sy = scales[ir.index]
            if ir.kind in ("qconv", "qdense"):
                op = ir.op
                get_in = quantized_input(ir.inputs[0])
                accv = views[ir.acc_buf]
                if ir.kind == "qdense":
                    wt = op._wt

                    def run_qdense(get_in=get_in, accv=accv, qv=qv, sy=sy,
                                   op=op, wt=wt) -> None:
                        qx, sx = get_in()
                        np.matmul(qx.reshape(qx.shape[0], -1), wt, out=accv)
                        sy[:] = op.requantize_into(accv, sx, qv)

                    ops.append(run_qdense)
                    continue
                in_sh = self._irs[ir.inputs[0]].value.shape
                pv = views[ir.padded_buf] if ir.padded_buf >= 0 else None
                interior = None
                if pv is not None:
                    ph, pw = op.padding
                    interior = pv[:, :, ph:ph + in_sh[2], pw:pw + in_sh[3]]
                src = pv if pv is not None else vals[ir.inputs[0]]
                windows = sliding_windows(src, op.kernel_size, op.stride,
                                          (0, 0))
                g = op.groups
                oh, ow = ir.value.shape[2:]
                if op.depthwise:
                    acc5 = accv.reshape(n, g, op._cout_g, oh, ow)

                    def run_qdw(get_in=get_in, pv=pv, op=op,
                                windows=windows, acc5=acc5, accv=accv,
                                qv=qv, sy=sy, interior=interior) -> None:
                        qx, sx = get_in()
                        if pv is not None:
                            pv.fill(0)
                            np.copyto(interior, qx)
                        np.einsum("ncijpq,cmij->ncmpq", windows, op._wdw,
                                  out=acc5)
                        sy[:] = op.requantize_into(accv, sx, qv)

                    ops.append(run_qdw)
                    continue
                k = op._cin_g * op.kernel_size[0] * op.kernel_size[1]
                accg = accv.reshape(n, g, op._cout_g, oh * ow)
                if ir.scratch_buf < 0:
                    # Pointwise: the (padded-or-direct) input *is* the
                    # column matrix, just viewed as (n, g, cin_g, P).
                    cols = src.reshape(n, g, op._cin_g, oh * ow)

                    def run_qpw(get_in=get_in, pv=pv, op=op, cols=cols,
                                accg=accg, accv=accv, qv=qv, sy=sy,
                                interior=interior) -> None:
                        qx, sx = get_in()
                        if pv is not None:
                            np.copyto(interior, qx)
                        np.matmul(op._wmat[None], cols, out=accg)
                        sy[:] = op.requantize_into(accv, sx, qv)

                    ops.append(run_qpw)
                    continue
                sv = views[ir.scratch_buf]
                cols = sv.reshape(n, g, k, oh * ow)

                def run_qconv(get_in=get_in, pv=pv, op=op, sv=sv,
                              windows=windows, cols=cols, accg=accg,
                              accv=accv, qv=qv, sy=sy,
                              interior=interior) -> None:
                    qx, sx = get_in()
                    if pv is not None:
                        pv.fill(0)
                        np.copyto(interior, qx)
                    np.copyto(sv, windows)
                    np.matmul(op._wmat[None], cols, out=accg)
                    sy[:] = op.requantize_into(accv, sx, qv)

                ops.append(run_qconv)
            elif ir.kind == "qmaxpool":
                op = ir.op
                in_sh = self._irs[ir.inputs[0]].value.shape
                get_in = quantized_input(ir.inputs[0])
                own_scale = ir.value.scale_src == ir.index
                pv = views[ir.padded_buf] if ir.padded_buf >= 0 else None
                interior = None
                if pv is not None:
                    ph, pw = op.padding
                    interior = pv[:, :, ph:ph + in_sh[2], pw:pw + in_sh[3]]
                src = pv if pv is not None else vals[ir.inputs[0]]
                windows = sliding_windows(src, op.kernel_size, op.stride,
                                          (0, 0))
                minval = int(np.iinfo(qv.dtype).min)

                def run_qpool(get_in=get_in, pv=pv, windows=windows, qv=qv,
                              sy=sy, own_scale=own_scale, relu=op.relu,
                              minval=minval, interior=interior) -> None:
                    qx, sx = get_in()
                    if pv is not None:
                        pv.fill(minval)
                        np.copyto(interior, qx)
                    np.max(windows, axis=(2, 3), out=qv)
                    if relu:
                        np.maximum(qv, 0, out=qv)
                    if own_scale:
                        sy[:] = sx

                ops.append(run_qpool)
            elif ir.kind == "qrelu":
                get_in = quantized_input(ir.inputs[0])
                own_scale = ir.value.scale_src == ir.index

                def run_qrelu(get_in=get_in, qv=qv, sy=sy,
                              own_scale=own_scale) -> None:
                    qx, sx = get_in()
                    np.maximum(qx.reshape(qv.shape), 0, out=qv)
                    if own_scale:
                        sy[:] = sx

                ops.append(run_qrelu)
            elif ir.kind == "concat":
                getters = []
                slices = []
                offset = 0
                for j in ir.inputs:
                    width = self._irs[j].value.shape[1]
                    getters.append(quantized_input(j))
                    slices.append(qv[:, offset:offset + width])
                    offset += width
                extra = (1,) * (len(ir.value.shape) - 1)

                def run_concat(getters=getters, slices=slices, sy=sy,
                               extra=extra) -> None:
                    parts = [g() for g in getters]
                    sy[:] = np.stack([p[1] for p in parts], axis=0).max(axis=0)
                    for (qp, sp), sl in zip(parts, slices):
                        ratio = (sp / sy).reshape((n,) + extra)
                        np.copyto(sl, np.round(qp * ratio), casting="unsafe")

                ops.append(run_concat)
            elif ir.kind == "add":
                accv = views[ir.acc_buf]
                getters = [quantized_input(j) for j in ir.inputs]
                extra = (1,) * (len(ir.value.shape) - 1)

                def run_add(getters=getters, accv=accv, qv=qv, sy=sy,
                            extra=extra) -> None:
                    q0, s0 = getters[0]()
                    np.copyto(accv, q0)
                    accv *= s0.reshape((n,) + extra)
                    for g in getters[1:]:
                        qk, sk = g()
                        part = qk.astype(np.float64)
                        part *= sk.reshape((n,) + extra)
                        accv += part
                    flat = accv.reshape(n, -1)
                    max_abs = np.abs(flat).max(axis=1)
                    sy[:] = np.where(max_abs == 0.0, 1.0, max_abs / qmax)
                    accv /= sy.reshape((n,) + extra)
                    np.round(accv, out=accv)
                    np.clip(accv, -qmax, qmax, out=accv)
                    np.copyto(qv, accv, casting="unsafe")

                ops.append(run_add)
            elif ir.kind == "module":
                mstep = ir.module.clone()
                j = ir.inputs[0]
                xv, sx = vals[j], scales[j]
                src_quant = self._irs[j].value.quantized

                def run_module(mstep=mstep, xv=xv, sx=sx,
                               src_quant=src_quant, fv=qv) -> None:
                    xf = dequantize_batch(xv, sx) if src_quant else xv
                    np.copyto(fv, mstep(xf))

                ops.append(run_module)
            else:  # pragma: no cover - exhaustive
                raise AssertionError(f"unhandled quantized step {ir.kind}")

        input_ir = next(ir for ir in self._irs if ir.kind == "input")
        in_view = vals[input_ir.index]
        in_scales = scales[input_ir.index]
        final = self._irs[-1]
        fvals, fscales = vals[final.index], scales[final.index]

        bound = _QBound()
        bound.batch = n
        bound.ops = ops

        def write_input(x: np.ndarray) -> None:
            q, s = quantize_batch(x, bits)
            np.copyto(in_view, q)
            in_scales[:] = s

        def write_quantized(q: np.ndarray, s: np.ndarray) -> None:
            np.copyto(in_view, q)
            in_scales[:] = s

        if final.value.quantized:
            bound.output_fn = lambda: dequantize_batch(fvals, fscales)
        else:
            bound.output_fn = lambda: fvals.copy()
        bound.write_input = write_input
        bound.write_quantized = write_quantized
        return bound


class _QBound:
    """One thread's bound quantized program (block + closures)."""

    __slots__ = ("ops", "write_input", "write_quantized", "output_fn",
                 "batch")

    def execute(self, x: np.ndarray) -> np.ndarray:
        self.write_input(x)
        for op in self.ops:
            op()
        return self.output_fn()

    def execute_quantized(self, q: np.ndarray,
                          scales: np.ndarray) -> np.ndarray:
        self.write_quantized(q, scales)
        for op in self.ops:
            op()
        return self.output_fn()


class CompiledQuantizedPlan:
    """Batch-specialized AOT programs over a quantized plan.

    The integer sibling of :class:`CompiledPlan`: static int16/int8
    arenas with pre-resolved offsets (~4x/8x smaller than the float
    compiled arena), pre-bound integer kernels, and the same
    requantizing epilogue code the interpreted quantized plan runs —
    outputs are bit-identical to :meth:`QuantizedInferencePlan.run`.
    Unseen batch sizes fall back to the interpreted quantized plan (or
    compile on first use with ``autocompile=True``).
    """

    def __init__(self, qplan, input_shape: Tuple[int, int, int],
                 batch_sizes: Sequence[int] = (1,), *,
                 autocompile: bool = False) -> None:
        if not batch_sizes and not autocompile:
            raise ValueError("need at least one batch size or autocompile")
        self._qplan = qplan
        self.input_shape = tuple(int(d) for d in input_shape)
        self.autocompile = autocompile
        self._programs: Dict[int, _QProgram] = {}
        self._compile_lock = threading.Lock()
        self._fallback_lock = threading.Lock()
        self.fallbacks = 0
        self.runs = 0
        for b in batch_sizes:
            self._ensure(int(b))

    def _ensure(self, batch: int) -> _QProgram:
        prog = self._programs.get(batch)
        if prog is None:
            with self._compile_lock:
                prog = self._programs.get(batch)
                if prog is None:
                    with obs.span("infer.qcompile", batch=batch,
                                  steps=len(self._qplan.steps)):
                        prog = _compile_qprogram(self._qplan, batch,
                                                 self.input_shape)
                    programs = dict(self._programs)
                    programs[batch] = prog
                    self._programs = programs
        return prog

    @property
    def plan(self):
        return self._qplan

    @property
    def bits(self) -> int:
        return self._qplan.bits

    @property
    def batch_sizes(self) -> Tuple[int, ...]:
        return tuple(sorted(self._programs))

    @property
    def fused_step_count(self) -> int:
        return self._qplan.fused_step_count

    def program(self, batch: int) -> _QProgram:
        return self._ensure(int(batch))

    def describe(self, batch: Optional[int] = None) -> str:
        batch = batch if batch is not None else self.batch_sizes[0]
        return self._programs[batch].describe()

    def static_arena_bytes(self, batch: int) -> int:
        return self._programs[batch].total_bytes

    def clone(self) -> "CompiledQuantizedPlan":
        """Replica sharing the compiled programs and quantized weights."""
        replica = CompiledQuantizedPlan.__new__(CompiledQuantizedPlan)
        replica._qplan = self._qplan.clone()
        replica.input_shape = self.input_shape
        replica.autocompile = self.autocompile
        replica._programs = self._programs
        replica._compile_lock = self._compile_lock
        replica._fallback_lock = threading.Lock()
        replica.fallbacks = 0
        replica.runs = 0
        return replica

    def _fallback(self, x: np.ndarray) -> np.ndarray:
        self.fallbacks += 1
        obs.count("infer.qcompiled.fallback")
        with self._fallback_lock:
            return self._qplan.run(x)

    def run(self, x: np.ndarray) -> np.ndarray:
        self.runs += 1
        if x.ndim != 4 or tuple(x.shape[1:]) != self.input_shape:
            return self._fallback(x)
        batch = int(x.shape[0])
        prog = self._programs.get(batch)
        if prog is None:
            if not self.autocompile:
                return self._fallback(x)
            prog = self._ensure(batch)
        return prog.bound().execute(np.asarray(x, dtype=np.float64))

    def run_quantized(self, q: np.ndarray,
                      scales: np.ndarray) -> np.ndarray:
        """Run on pre-quantized input (serving ring payloads)."""
        self.runs += 1
        batch = int(q.shape[0])
        prog = self._programs.get(batch)
        if prog is None or tuple(q.shape[1:]) != self.input_shape:
            if prog is None and self.autocompile and (
                    tuple(q.shape[1:]) == self.input_shape):
                prog = self._ensure(batch)
            else:
                self.fallbacks += 1
                with self._fallback_lock:
                    return self._qplan.run_quantized(q, scales)
        return prog.bound().execute_quantized(q, scales)

    __call__ = run


def compile_quantized_plan(qplan, input_shape: Tuple[int, int, int],
                           batch_sizes: Sequence[int] = (1,), *,
                           autocompile: bool = False
                           ) -> CompiledQuantizedPlan:
    """Lower a :class:`~repro.nn.quant.QuantizedInferencePlan` AOT.

    ``input_shape`` is the per-sample ``(C, H, W)``.  The compiled
    program's static arena stores activations, padded inputs and
    gather scratch in the plan's integer dtype; only per-layer GEMM
    accumulators stay float64 (exact integer containers).
    """
    return CompiledQuantizedPlan(qplan, input_shape, batch_sizes,
                                 autocompile=autocompile)
