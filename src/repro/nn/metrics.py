"""Classification metrics: accuracy, top-k, confusion matrix.

The paper reports top-1 accuracy throughout (and mentions top-1 vs
SqueezeNet in §5); top-5 is the other standard ImageNet metric, and the
confusion matrix is what one actually inspects when a deployed embedded
classifier misbehaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def top_k_accuracy(scores: np.ndarray, labels: np.ndarray, k: int = 1) -> float:
    """Fraction of rows whose true label is among the top-k scores."""
    if scores.ndim != 2:
        raise ValueError(f"scores must be (N, C), got {scores.shape}")
    if labels.shape != (scores.shape[0],):
        raise ValueError("labels must be (N,)")
    if not 1 <= k <= scores.shape[1]:
        raise ValueError(f"k must be in [1, {scores.shape[1]}]")
    top = np.argpartition(-scores, kth=k - 1, axis=1)[:, :k]
    hits = (top == labels[:, None]).any(axis=1)
    return float(hits.mean())


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """Counts matrix ``M[true, predicted]``."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.shape != labels.shape:
        raise ValueError("predictions and labels must align")
    if (labels.min() < 0 or labels.max() >= num_classes
            or predictions.min() < 0 or predictions.max() >= num_classes):
        raise ValueError("class index out of range")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


@dataclass(frozen=True)
class ClassificationReport:
    """Per-class precision/recall plus overall accuracy."""

    accuracy: float
    precision: np.ndarray  # per class
    recall: np.ndarray     # per class
    support: np.ndarray    # true samples per class

    @property
    def macro_f1(self) -> float:
        p, r = self.precision, self.recall
        with np.errstate(divide="ignore", invalid="ignore"):
            f1 = np.where(p + r > 0, 2 * p * r / (p + r), 0.0)
        return float(f1.mean())


def classification_report(predictions: np.ndarray, labels: np.ndarray,
                          num_classes: int) -> ClassificationReport:
    """Summarize a prediction run into the standard per-class metrics."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    true_pos = np.diag(matrix).astype(np.float64)
    predicted = matrix.sum(axis=0).astype(np.float64)
    actual = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(divide="ignore", invalid="ignore"):
        precision = np.where(predicted > 0, true_pos / predicted, 0.0)
        recall = np.where(actual > 0, true_pos / actual, 0.0)
    return ClassificationReport(
        accuracy=float(true_pos.sum() / max(1, matrix.sum())),
        precision=precision,
        recall=recall,
        support=matrix.sum(axis=1),
    )
