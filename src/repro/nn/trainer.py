"""Training loop for graph networks on in-memory datasets."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.nn.data import Dataset
from repro.nn.loss import CrossEntropyLoss
from repro.nn.network import GraphNetwork
from repro.nn.optim import SGD


@dataclass
class EpochStats:
    """Metrics of one training epoch."""

    epoch: int
    train_loss: float
    train_accuracy: float
    test_accuracy: Optional[float] = None


@dataclass
class TrainingHistory:
    """Accumulated metrics across a training run."""

    epochs: List[EpochStats] = field(default_factory=list)

    @property
    def final_test_accuracy(self) -> Optional[float]:
        for stats in reversed(self.epochs):
            if stats.test_accuracy is not None:
                return stats.test_accuracy
        return None

    @property
    def final_train_loss(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].train_loss


def evaluate(network: GraphNetwork, dataset: Dataset,
             batch_size: int = 64) -> float:
    """Top-1 accuracy of the network on a dataset."""
    network.eval()
    correct = 0
    for images, labels in dataset.batches(batch_size):
        correct += int((network.predict(images) == labels).sum())
    network.train()
    return correct / len(dataset)


class Trainer:
    """Minibatch SGD trainer with optional per-epoch evaluation.

    The final classifier layer should emit raw logits (the zoo models
    end in Softmax; pass ``logits_of`` to strip it, or build training
    variants without the Softmax node).
    """

    def __init__(
        self,
        network: GraphNetwork,
        optimizer: SGD,
        batch_size: int = 32,
        seed: int = 0,
        scheduler=None,
        logits_of: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.network = network
        self.optimizer = optimizer
        self.batch_size = batch_size
        self.scheduler = scheduler
        self.loss_fn = CrossEntropyLoss()
        self._rng = np.random.default_rng(seed)
        self._logits_of = logits_of

    def train_epoch(self, dataset: Dataset) -> EpochStats:
        """One pass over the training set."""
        self.network.train()
        total_loss = 0.0
        total_correct = 0
        num_batches = 0
        for images, labels in dataset.batches(self.batch_size, self._rng):
            logits = self.network.forward(images)
            if self._logits_of is not None:
                logits = self._logits_of(logits)
            loss, grad = self.loss_fn(logits, labels)
            self.network.zero_grad()
            self.network.backward(grad)
            self.optimizer.step()
            total_loss += loss
            total_correct += int((np.argmax(logits, axis=-1) == labels).sum())
            num_batches += 1
        return EpochStats(
            epoch=0,
            train_loss=total_loss / max(1, num_batches),
            train_accuracy=total_correct / len(dataset),
        )

    def fit(
        self,
        train: Dataset,
        test: Optional[Dataset] = None,
        epochs: int = 5,
        early_stopping_patience: Optional[int] = None,
    ) -> TrainingHistory:
        """Train for several epochs, evaluating after each.

        With ``early_stopping_patience`` set (requires a test set),
        training stops once test accuracy has not improved for that
        many epochs, and the best-scoring weights are restored.
        """
        if epochs <= 0:
            raise ValueError("epochs must be positive")
        if early_stopping_patience is not None:
            if early_stopping_patience <= 0:
                raise ValueError("patience must be positive")
            if test is None:
                raise ValueError("early stopping needs a test set")
        history = TrainingHistory()
        best_accuracy = -1.0
        best_state = None
        stale_epochs = 0
        for epoch in range(1, epochs + 1):
            stats = self.train_epoch(train)
            stats.epoch = epoch
            if test is not None:
                stats.test_accuracy = evaluate(self.network, test,
                                               self.batch_size)
            if self.scheduler is not None:
                self.scheduler.step()
            history.epochs.append(stats)
            if early_stopping_patience is not None:
                if stats.test_accuracy > best_accuracy:
                    best_accuracy = stats.test_accuracy
                    best_state = self.network.state_dict()
                    stale_epochs = 0
                else:
                    stale_epochs += 1
                    if stale_epochs >= early_stopping_patience:
                        break
        if best_state is not None:
            self.network.load_state_dict(best_state)
        return history


def save_checkpoint(network: GraphNetwork, path: str) -> None:
    """Write the network's parameters to a ``.npz`` file."""
    state = network.state_dict()
    # npz keys cannot contain '/', which layer names do; escape them.
    escaped = {name.replace("/", "__"): value
               for name, value in state.items()}
    np.savez(path, **escaped)


def load_checkpoint(network: GraphNetwork, path: str) -> None:
    """Restore parameters written by :func:`save_checkpoint`."""
    with np.load(path) as archive:
        state = {name.replace("__", "/"): archive[name]
                 for name in archive.files}
    network.load_state_dict(state)
