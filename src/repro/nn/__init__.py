"""From-scratch numpy neural-network framework.

This package is the reproduction's PyTorch substitute (DESIGN.md §5):
it lowers the same :mod:`repro.graph` layer specs the accelerator
simulator consumes into runnable, trainable numpy code — forward,
backward, SGD, quantization — so the full train / quantize / deploy path
of an embedded vision model is real executable code.
"""

from repro.nn.augment import (
    additive_noise,
    augment_dataset,
    compose,
    random_horizontal_flip,
    random_translate,
)
from repro.nn.data import Dataset, SHAPE_CLASSES, make_shapes_dataset, train_test_split
from repro.nn.layers import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool,
    MaxPool2D,
    ReLU,
    Softmax,
    Upsample,
)
from repro.nn.compile import (
    CompiledPlan,
    CompiledQuantizedPlan,
    compile_plan,
    compile_quantized_plan,
)
from repro.nn.infer import (
    ArenaRegistry,
    BufferArena,
    FusedConv2D,
    FusedDense,
    InferencePlan,
    build_inference_plan,
    fold_batchnorm,
)
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn.metrics import (
    ClassificationReport,
    classification_report,
    confusion_matrix,
    top_k_accuracy,
)
from repro.nn.module import (
    Identity,
    Module,
    Parameter,
    is_grad_enabled,
    no_grad,
)
from repro.nn.network import GraphNetwork
from repro.nn.optim import SGD, Adam, CosineLR, StepLR
from repro.nn.quant import (
    symmetric_quantize,
    QuantizationSpec,
    QuantizedInferencePlan,
    TensorQuantization,
    activation_dtype,
    build_quantized_plan,
    dequantize_batch,
    quantization_sweep,
    quantize_batch,
    quantize_network,
    quantize_plan,
    quantize_tensor,
)
from repro.nn.fixed_point import DatapathReport, emulate_fixed_point
from repro.nn.trainer import (
    EpochStats,
    Trainer,
    TrainingHistory,
    evaluate,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "Adam",
    "AvgPool2D",
    "ArenaRegistry",
    "BufferArena",
    "ClassificationReport",
    "CompiledPlan",
    "CompiledQuantizedPlan",
    "BatchNorm2D",
    "Conv2D",
    "CosineLR",
    "CrossEntropyLoss",
    "DatapathReport",
    "Dataset",
    "Dense",
    "Dropout",
    "EpochStats",
    "Flatten",
    "FusedConv2D",
    "FusedDense",
    "GlobalAvgPool",
    "GraphNetwork",
    "Identity",
    "InferencePlan",
    "MSELoss",
    "MaxPool2D",
    "Module",
    "Parameter",
    "QuantizationSpec",
    "QuantizedInferencePlan",
    "ReLU",
    "SGD",
    "SHAPE_CLASSES",
    "Softmax",
    "StepLR",
    "TensorQuantization",
    "Trainer",
    "TrainingHistory",
    "Upsample",
    "activation_dtype",
    "additive_noise",
    "augment_dataset",
    "build_inference_plan",
    "build_quantized_plan",
    "classification_report",
    "compile_plan",
    "compile_quantized_plan",
    "compose",
    "dequantize_batch",
    "fold_batchnorm",
    "is_grad_enabled",
    "no_grad",
    "confusion_matrix",
    "emulate_fixed_point",
    "evaluate",
    "load_checkpoint",
    "make_shapes_dataset",
    "quantization_sweep",
    "quantize_batch",
    "quantize_network",
    "quantize_plan",
    "quantize_tensor",
    "symmetric_quantize",
    "random_horizontal_flip",
    "save_checkpoint",
    "random_translate",
    "top_k_accuracy",
    "train_test_split",
]
