"""Lightweight data augmentation for the synthetic training pipeline.

Standard embedded-vision training augmentations, implemented as pure
array transforms so they compose with :class:`repro.nn.data.Dataset`:
horizontal flips, integer translations with zero fill, and additive
Gaussian noise.  All are deterministic under an explicit RNG.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.nn.data import Dataset

Transform = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def random_horizontal_flip(p: float = 0.5) -> Transform:
    """Flip each image left-right with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")

    def transform(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = images.copy()
        flip = rng.random(images.shape[0]) < p
        out[flip] = out[flip, :, :, ::-1]
        return out

    return transform


def random_translate(max_shift: int = 2) -> Transform:
    """Shift each image by up to ``max_shift`` pixels, zero-filled."""
    if max_shift < 0:
        raise ValueError("max_shift must be non-negative")

    def transform(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = np.zeros_like(images)
        h, w = images.shape[2:]
        shifts = rng.integers(-max_shift, max_shift + 1,
                              size=(images.shape[0], 2))
        for i, (dy, dx) in enumerate(shifts):
            src_y = slice(max(0, -dy), min(h, h - dy))
            src_x = slice(max(0, -dx), min(w, w - dx))
            dst_y = slice(max(0, dy), min(h, h + dy))
            dst_x = slice(max(0, dx), min(w, w + dx))
            out[i, :, dst_y, dst_x] = images[i, :, src_y, src_x]
        return out

    return transform


def additive_noise(sigma: float = 0.05) -> Transform:
    """Add zero-mean Gaussian noise."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")

    def transform(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        return images + rng.normal(0.0, sigma, size=images.shape)

    return transform


def compose(transforms: Sequence[Transform]) -> Transform:
    """Apply transforms left to right."""

    def transform(images: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        for t in transforms:
            images = t(images, rng)
        return images

    return transform


def augment_dataset(dataset: Dataset, transform: Transform,
                    copies: int = 1, seed: int = 0) -> Dataset:
    """Append ``copies`` transformed replicas of a dataset to itself."""
    if copies < 1:
        raise ValueError("copies must be >= 1")
    rng = np.random.default_rng(seed)
    images = [dataset.images]
    labels = [dataset.labels]
    for _ in range(copies):
        images.append(transform(dataset.images, rng))
        labels.append(dataset.labels)
    return Dataset(np.concatenate(images), np.concatenate(labels))
