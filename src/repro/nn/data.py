"""Synthetic image-classification data.

SUBSTITUTION (DESIGN.md §5): ImageNet is not available offline, so the
training demonstrations run on a parametric "shapes" dataset: each class
is a geometric figure (disk, ring, square frame, cross, diagonal
stripes, ...) rendered at a random position/scale into a small RGB-like
image with additive noise.  The task is easy enough that the compact
zoo-style models reach high accuracy in a few epochs on a laptop, yet
hard enough that accuracy responds to capacity — which is all the
Figure 3/4 accuracy axes need qualitatively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

#: Canonical class order of the shapes dataset.
SHAPE_CLASSES = ("disk", "ring", "square", "cross", "stripes", "checker")


def _coordinate_grids(size: int) -> Tuple[np.ndarray, np.ndarray]:
    axis = np.arange(size, dtype=np.float64)
    return np.meshgrid(axis, axis, indexing="ij")


def _render(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Render one grayscale shape image in [0, 1]."""
    yy, xx = _coordinate_grids(size)
    cy = rng.uniform(0.35, 0.65) * size
    cx = rng.uniform(0.35, 0.65) * size
    radius = rng.uniform(0.18, 0.32) * size
    name = SHAPE_CLASSES[label]
    if name == "disk":
        mask = (yy - cy) ** 2 + (xx - cx) ** 2 <= radius ** 2
    elif name == "ring":
        dist2 = (yy - cy) ** 2 + (xx - cx) ** 2
        mask = (dist2 <= radius ** 2) & (dist2 >= (0.55 * radius) ** 2)
    elif name == "square":
        inner = 0.55 * radius
        dy, dx = np.abs(yy - cy), np.abs(xx - cx)
        mask = (np.maximum(dy, dx) <= radius) & (np.maximum(dy, dx) >= inner)
    elif name == "cross":
        arm = max(1.0, 0.35 * radius)
        mask = (((np.abs(yy - cy) <= arm) & (np.abs(xx - cx) <= radius))
                | ((np.abs(xx - cx) <= arm) & (np.abs(yy - cy) <= radius)))
    elif name == "stripes":
        period = max(2.0, radius / 1.5)
        phase = rng.uniform(0, period)
        in_box = (np.abs(yy - cy) <= radius) & (np.abs(xx - cx) <= radius)
        mask = in_box & (((yy + xx + phase) % period) < period / 2)
    elif name == "checker":
        period = max(2.0, radius)
        in_box = (np.abs(yy - cy) <= radius) & (np.abs(xx - cx) <= radius)
        mask = in_box & ((((yy // (period / 2)) + (xx // (period / 2))) % 2) == 0)
    else:  # pragma: no cover - SHAPE_CLASSES is closed
        raise ValueError(f"unknown class {label}")
    return mask.astype(np.float64)


@dataclass(frozen=True)
class Dataset:
    """Arrays of images ``(N, C, H, W)`` and integer labels ``(N,)``."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError("images must be NCHW")
        if self.labels.shape != (self.images.shape[0],):
            raise ValueError("labels must be (N,)")

    def __len__(self) -> int:
        return self.images.shape[0]

    @property
    def num_classes(self) -> int:
        return int(self.labels.max()) + 1

    def batches(
        self, batch_size: int,
        rng: Optional[np.random.Generator] = None,
    ) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate shuffled minibatches.

        With ``rng=None`` a fresh seeded generator is used, so the
        batch order is shuffled but *deterministic* — identical on
        every call.  Pass your own generator (the trainer does) to get
        a different shuffle per epoch while staying reproducible
        end-to-end.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if rng is None:
            rng = np.random.default_rng(0)
        order = np.arange(len(self))
        rng.shuffle(order)
        for start in range(0, len(self), batch_size):
            index = order[start:start + batch_size]
            yield self.images[index], self.labels[index]


def make_shapes_dataset(
    num_samples: int,
    image_size: int = 32,
    channels: int = 3,
    num_classes: int = len(SHAPE_CLASSES),
    noise: float = 0.15,
    seed: int = 0,
) -> Dataset:
    """Generate a balanced, deterministic shapes classification dataset."""
    if not 2 <= num_classes <= len(SHAPE_CLASSES):
        raise ValueError(
            f"num_classes must be in [2, {len(SHAPE_CLASSES)}]")
    if image_size < 8:
        raise ValueError("image_size must be at least 8")
    rng = np.random.default_rng(seed)
    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    images = np.empty((num_samples, channels, image_size, image_size))
    for i, label in enumerate(labels):
        base = _render(int(label), image_size, rng)
        tint = rng.uniform(0.6, 1.0, size=channels)
        for ch in range(channels):
            images[i, ch] = base * tint[ch]
    images += rng.normal(0.0, noise, size=images.shape)
    images = np.clip(images, 0.0, 1.0)
    # Normalize to zero mean / unit-ish scale for stable training.
    images = (images - 0.5) * 2.0
    return Dataset(images=images, labels=labels.astype(np.int64))


def train_test_split(dataset: Dataset, test_fraction: float = 0.2,
                     seed: int = 0) -> Tuple[Dataset, Dataset]:
    """Deterministic shuffled split into train and test subsets."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(dataset))
    n_test = max(1, int(len(dataset) * test_fraction))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return (
        Dataset(dataset.images[train_idx], dataset.labels[train_idx]),
        Dataset(dataset.images[test_idx], dataset.labels[test_idx]),
    )
