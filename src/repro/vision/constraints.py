"""Embedded-vision application constraints (paper §2).

An embedded vision application "must guarantee a level of accuracy,
operate within real-time constraints, and optimize for power, energy,
and memory footprint."  This module encodes that contract as a value
object that deployment candidates are checked against.

Power is derived from the energy model: normalized energy units convert
to joules through the per-MAC energy of the 16-bit datapath, and average
power is energy per inference divided by inference latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

#: Energy of one 16-bit integer MAC in joules (~1 pJ in a mobile-class
#: process node); converts the simulator's normalized units to joules.
JOULES_PER_MAC_UNIT = 1.0e-12


@dataclass(frozen=True)
class ApplicationConstraints:
    """Budget envelope of one embedded vision application."""

    name: str
    min_top1_accuracy: float = 0.0      # percent
    max_latency_ms: Optional[float] = None
    max_energy_mj: Optional[float] = None   # millijoules per inference
    max_power_mw: Optional[float] = None    # average milliwatts
    max_model_mib: Optional[float] = None   # weight storage

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_top1_accuracy <= 100.0:
            raise ValueError("accuracy must be a percentage")
        for field_name in ("max_latency_ms", "max_energy_mj",
                           "max_power_mw", "max_model_mib"):
            value = getattr(self, field_name)
            if value is not None and value <= 0:
                raise ValueError(f"{field_name} must be positive")


@dataclass(frozen=True)
class CandidateMetrics:
    """Measured characteristics of one model/machine pairing."""

    model: str
    machine: str
    top1_accuracy: float   # percent
    latency_ms: float
    energy_units: float    # simulator-normalized
    model_bytes: int

    @property
    def energy_mj(self) -> float:
        return self.energy_units * JOULES_PER_MAC_UNIT * 1e3

    @property
    def average_power_mw(self) -> float:
        if self.latency_ms <= 0:
            raise ValueError("latency must be positive")
        joules = self.energy_units * JOULES_PER_MAC_UNIT
        return joules / (self.latency_ms * 1e-3) * 1e3

    @property
    def model_mib(self) -> float:
        return self.model_bytes / (1024 * 1024)


def violations(candidate: CandidateMetrics,
               constraints: ApplicationConstraints) -> List[str]:
    """Human-readable list of constraint violations (empty = feasible)."""
    problems: List[str] = []
    if candidate.top1_accuracy < constraints.min_top1_accuracy:
        problems.append(
            f"accuracy {candidate.top1_accuracy:.1f}% < "
            f"{constraints.min_top1_accuracy:.1f}%")
    if (constraints.max_latency_ms is not None
            and candidate.latency_ms > constraints.max_latency_ms):
        problems.append(
            f"latency {candidate.latency_ms:.2f}ms > "
            f"{constraints.max_latency_ms:.2f}ms")
    if (constraints.max_energy_mj is not None
            and candidate.energy_mj > constraints.max_energy_mj):
        problems.append(
            f"energy {candidate.energy_mj:.3f}mJ > "
            f"{constraints.max_energy_mj:.3f}mJ")
    if (constraints.max_power_mw is not None
            and candidate.average_power_mw > constraints.max_power_mw):
        problems.append(
            f"power {candidate.average_power_mw:.1f}mW > "
            f"{constraints.max_power_mw:.1f}mW")
    if (constraints.max_model_mib is not None
            and candidate.model_mib > constraints.max_model_mib):
        problems.append(
            f"model {candidate.model_mib:.2f}MiB > "
            f"{constraints.max_model_mib:.2f}MiB")
    return problems


def satisfies(candidate: CandidateMetrics,
              constraints: ApplicationConstraints) -> bool:
    """True when the candidate meets every budget."""
    return not violations(candidate, constraints)
