"""Deployment selection: pick a model + machine that meets the budget.

This is the user-facing payoff of Figure 4: given application
constraints, enumerate (model, accelerator) candidates, simulate them,
discard infeasible ones, and return the most accurate survivor (ties
broken by energy — battery life is the paper's stated optimization
target once hard constraints hold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.accel.config import AcceleratorConfig, squeezelerator
from repro.accel.hybrid import Squeezelerator
from repro.graph.network_spec import NetworkSpec
from repro.graph.stats import weight_bytes
from repro.models.accuracy import maybe_top1_accuracy
from repro.vision.constraints import (
    ApplicationConstraints,
    CandidateMetrics,
    violations,
)


@dataclass(frozen=True)
class DeploymentCandidate:
    """One simulated pairing with its feasibility verdict."""

    metrics: CandidateMetrics
    problems: Sequence[str]

    @property
    def feasible(self) -> bool:
        return not self.problems


@dataclass(frozen=True)
class DeploymentPlan:
    """Outcome of a deployment search."""

    constraints: ApplicationConstraints
    candidates: List[DeploymentCandidate]
    selected: Optional[DeploymentCandidate]

    @property
    def feasible_count(self) -> int:
        return sum(1 for c in self.candidates if c.feasible)


def measure_candidate(
    network: NetworkSpec,
    config: AcceleratorConfig,
    accuracy: Optional[float] = None,
) -> CandidateMetrics:
    """Simulate one model on one machine into deployment metrics."""
    if accuracy is None:
        accuracy = maybe_top1_accuracy(network.name)
    if accuracy is None:
        raise ValueError(
            f"no accuracy known for {network.name!r}; pass accuracy=")
    report = Squeezelerator(config=config).run(network)
    return CandidateMetrics(
        model=network.name,
        machine=config.name,
        top1_accuracy=accuracy,
        latency_ms=report.inference_ms,
        energy_units=report.total_energy,
        model_bytes=weight_bytes(network),
    )


def plan_deployment(
    constraints: ApplicationConstraints,
    networks: Sequence[NetworkSpec],
    configs: Optional[Sequence[AcceleratorConfig]] = None,
    accuracies: Optional[Dict[str, float]] = None,
) -> DeploymentPlan:
    """Search (model x machine) and select the best feasible pairing.

    Selection: maximize accuracy among feasible candidates, breaking
    ties by lower energy, then lower latency.
    """
    if configs is None:
        configs = [squeezelerator(32)]
    accuracies = accuracies or {}
    candidates: List[DeploymentCandidate] = []
    for network in networks:
        for config in configs:
            accuracy = accuracies.get(network.name)
            metrics = measure_candidate(network, config, accuracy)
            candidates.append(DeploymentCandidate(
                metrics=metrics,
                problems=tuple(violations(metrics, constraints)),
            ))
    feasible = [c for c in candidates if c.feasible]
    selected = None
    if feasible:
        selected = max(
            feasible,
            key=lambda c: (c.metrics.top1_accuracy,
                           -c.metrics.energy_units,
                           -c.metrics.latency_ms),
        )
    return DeploymentPlan(constraints=constraints,
                          candidates=candidates, selected=selected)
