"""Activation-memory footprint analysis (the paper's §2 claim).

"Object detection and semantic segmentation are more sensitive to image
resolutions ... As a result, DNN for object detection and semantic
segmentation have much larger memory footprint."  This module makes
that claim measurable: a liveness walk over the layer graph computes
the peak number of activation bytes that must be simultaneously
resident, plus total activation and weight traffic.

Liveness: executing nodes in topological order, a node's output stays
live until its last consumer has executed; the peak is the largest
live-set total observed.  Branching (fire modules, skip connections)
therefore costs real memory, as it does on the device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.graph.network_spec import NetworkSpec
from repro.graph.stats import network_macs, weight_bytes


@dataclass(frozen=True)
class MemoryProfile:
    """Memory characteristics of one network at 16-bit activations."""

    network: str
    input_pixels: int
    peak_activation_bytes: int
    peak_layer: str               # where the peak occurs
    total_activation_bytes: int   # sum of all layer outputs
    weight_bytes: int
    macs: int

    @property
    def peak_activation_kib(self) -> float:
        return self.peak_activation_bytes / 1024

    def fits_buffer(self, buffer_bytes: int) -> bool:
        """Could the live activations ever stay fully on-chip?"""
        return self.peak_activation_bytes <= buffer_bytes


def profile_memory(network: NetworkSpec,
                   bytes_per_element: int = 2) -> MemoryProfile:
    """Liveness-based peak activation analysis of one network."""
    last_consumer: Dict[str, int] = {}
    order = {node.name: i for i, node in enumerate(network.nodes)}
    for node in network.nodes:
        for producer in node.inputs:
            last_consumer[producer] = max(last_consumer.get(producer, -1),
                                          order[node.name])
    # The network output is "consumed" after everything else.
    final = len(network.nodes)
    last_consumer[network.output_node.name] = final

    live_bytes: Dict[str, int] = {}
    peak = 0
    peak_layer = network.input_node.name
    for step, node in enumerate(network.nodes):
        live_bytes[node.name] = node.output_shape.bytes(bytes_per_element)
        current = sum(live_bytes.values())
        if current > peak:
            peak = current
            peak_layer = node.name
        # Retire tensors whose last consumer has now executed.
        dead = [name for name in live_bytes
                if last_consumer.get(name, -1) <= step and name != node.name]
        for name in dead:
            del live_bytes[name]

    total_activations = sum(
        node.output_shape.bytes(bytes_per_element) for node in network.nodes)
    shape = network.input_shape
    return MemoryProfile(
        network=network.name,
        input_pixels=shape.height * shape.width,
        peak_activation_bytes=peak,
        peak_layer=peak_layer,
        total_activation_bytes=total_activations,
        weight_bytes=weight_bytes(network, bytes_per_element),
        macs=network_macs(network),
    )


def compare_footprints(networks: List[NetworkSpec],
                       bytes_per_element: int = 2) -> List[MemoryProfile]:
    """Profiles for several networks, sorted by peak footprint."""
    profiles = [profile_memory(n, bytes_per_element) for n in networks]
    return sorted(profiles, key=lambda p: p.peak_activation_bytes)
