"""Embedded-vision application layer: constraints, deployment, pipeline."""

from repro.vision.constraints import (
    JOULES_PER_MAC_UNIT,
    ApplicationConstraints,
    CandidateMetrics,
    satisfies,
    violations,
)
from repro.vision.footprint import MemoryProfile, compare_footprints, profile_memory
from repro.vision.deploy import (
    DeploymentCandidate,
    DeploymentPlan,
    measure_candidate,
    plan_deployment,
)
from repro.vision.pipeline import PipelineResult, run_pipeline, tiny_squeezenet

__all__ = [
    "ApplicationConstraints",
    "CandidateMetrics",
    "DeploymentCandidate",
    "DeploymentPlan",
    "JOULES_PER_MAC_UNIT",
    "MemoryProfile",
    "compare_footprints",
    "profile_memory",
    "PipelineResult",
    "measure_candidate",
    "plan_deployment",
    "run_pipeline",
    "satisfies",
    "tiny_squeezenet",
    "violations",
]
