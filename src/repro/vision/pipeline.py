"""End-to-end embedded classification pipeline.

Ties the whole reproduction together on real (synthetic) data:

    define model graph -> train in float (numpy) -> quantize to the
    accelerator's integer width -> evaluate accuracy -> simulate the
    same graph on the Squeezelerator -> report accuracy + latency +
    energy against the application constraints.

This is the workflow the paper's §2 motivates; it runs in seconds on
scaled-down models and the synthetic shapes dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accel.config import AcceleratorConfig, squeezelerator
from repro.accel.hybrid import Squeezelerator
from repro.graph import NetworkBuilder, NetworkSpec, TensorShape
from repro.graph.stats import weight_bytes
from repro.nn.data import Dataset, make_shapes_dataset, train_test_split
from repro.nn.network import GraphNetwork
from repro.nn.optim import SGD
from repro.nn.quant import QuantizationSpec, quantize_network
from repro.nn.trainer import Trainer, TrainingHistory, evaluate
from repro.vision.constraints import CandidateMetrics


def tiny_squeezenet(
    image_size: int = 32,
    num_classes: int = 6,
    width: int = 8,
) -> NetworkSpec:
    """A SqueezeNet-shaped classifier scaled to synthetic-data size.

    Same structural ideas as the real model — small first conv, two fire
    modules (1x1 squeeze feeding parallel 1x1/3x3 expands), global
    average pooling over a 1x1 conv classifier — at a size the numpy
    trainer handles in seconds.
    """
    from repro.models.squeezenet import fire_module

    b = NetworkBuilder(f"tiny-squeezenet-w{width}",
                       TensorShape(3, image_size, image_size))
    b.conv("conv1", 2 * width, kernel_size=3, stride=2, padding=1)
    b.pool("pool1", kernel_size=2, stride=2)
    fire_module(b, "fire2", width, 2 * width, 2 * width)
    fire_module(b, "fire3", width, 2 * width, 2 * width)
    b.pool("pool3", kernel_size=2, stride=2)
    fire_module(b, "fire4", 2 * width, 4 * width, 4 * width)
    b.conv("conv_final", num_classes, kernel_size=1, activation="identity")
    b.global_avg_pool("gap")
    return b.build()


@dataclass
class PipelineResult:
    """Everything the end-to-end run produced."""

    network: NetworkSpec
    history: TrainingHistory
    float_accuracy: float
    quantized_accuracy: float
    metrics: CandidateMetrics

    @property
    def quantization_drop(self) -> float:
        """Accuracy lost by integer quantization (fractional)."""
        return self.float_accuracy - self.quantized_accuracy


def run_pipeline(
    network_spec: Optional[NetworkSpec] = None,
    dataset: Optional[Dataset] = None,
    config: Optional[AcceleratorConfig] = None,
    epochs: int = 8,
    lr: float = 0.08,
    batch_size: int = 32,
    quant_bits: int = 16,
    seed: int = 0,
) -> PipelineResult:
    """Train, quantize, evaluate and simulate one embedded classifier."""
    if network_spec is None:
        network_spec = tiny_squeezenet()
    if dataset is None:
        dataset = make_shapes_dataset(900, image_size=32, seed=seed)
    if config is None:
        config = squeezelerator(32)
    train, test = train_test_split(dataset, test_fraction=0.2, seed=seed)

    # Batch normalization after every convolution: essential for stable
    # from-scratch SGD on the deeper fire-module topology.
    network = GraphNetwork(network_spec,
                           rng=np.random.default_rng(seed),
                           batch_norm=True)
    optimizer = SGD(network.parameters(), lr=lr, max_grad_norm=5.0)
    trainer = Trainer(network, optimizer,
                      batch_size=batch_size, seed=seed)
    history = trainer.fit(train, test, epochs=epochs)
    float_accuracy = evaluate(network, test, batch_size)

    quantize_network(network, QuantizationSpec(bits=quant_bits))
    quantized_accuracy = evaluate(network, test, batch_size)

    report = Squeezelerator(config=config).run(network_spec)
    metrics = CandidateMetrics(
        model=network_spec.name,
        machine=config.name,
        top1_accuracy=quantized_accuracy * 100.0,
        latency_ms=report.inference_ms,
        energy_units=report.total_energy,
        model_bytes=weight_bytes(network_spec),
    )
    return PipelineResult(
        network=network_spec,
        history=history,
        float_accuracy=float_accuracy,
        quantized_accuracy=quantized_accuracy,
        metrics=metrics,
    )
